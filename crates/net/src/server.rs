//! The framed-TCP connection layer: one listener per site driven by a
//! readiness reactor (one thread per site, nonblocking sockets
//! multiplexed through the vendored `polling` shim), plus a legacy
//! thread-per-connection accept pool kept as a compatibility path
//! behind [`TcpConfig::thread_per_conn`].
//!
//! Wire protocol (on top of [`crate::frame`]):
//!
//! * client → server: frame body = `[mode u8][RegistryRequest]` where
//!   mode 0 = CALL (a response frame follows), mode 1 = CAST
//!   (fire-and-forget, no response), and mode 2 = CALL_SEQ (pipelined
//!   call: a `u32_le` sequence id follows the mode byte and is echoed
//!   ahead of the response, so many calls can be in flight on one
//!   connection and resolve to the right callers regardless of
//!   interleaving);
//! * server → client: frame body = `[RegistryResponse]` for CALL,
//!   `[u32_le seq][RegistryResponse]` for CALL_SEQ.
//!
//! A malformed request never kills a connection's peers: CALLs answer
//! with `RegistryResponse::Error` (the codec is total), CASTs are
//! dropped. The reactor decodes every frame a readiness pass delivered
//! and serves them as one ordered batch through
//! [`ServiceCore::serve_batch`], which groups runs of consecutive reads
//! into shard-grouped `multi_get`s. Poll waits are bounded by the
//! configured tick so the loop observes the runtime's shutdown flag; at
//! shutdown the dummy connection from [`ConnectionLayer::unblock`] also
//! wakes the poller immediately.

use crate::client::TcpClientTransport;
use crate::frame::{write_frame, Fill, FrameReader};
use geometa_core::protocol::{RegistryRequest, RegistryResponse};
use geometa_core::runtime::{ConnectionLayer, ServiceCore, Spawner};
use geometa_core::MetaError;
use geometa_sim::topology::SiteId;
use parking_lot::{Condvar, Mutex};
use polling::{Event, Poller};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Frame-body mode byte: blocking RPC, a response frame follows.
pub const MODE_CALL: u8 = 0;
/// Frame-body mode byte: fire-and-forget, no response.
pub const MODE_CAST: u8 = 1;
/// Frame-body mode byte: pipelined RPC. A `u32_le` sequence id follows
/// the mode byte; the response frame leads with the same id.
pub const MODE_CALL_SEQ: u8 = 2;
/// Frame-body mode byte: epoch-guarded pipelined RPC. Layout
/// `[mode][u32_le seq][u64_le epoch][request]`. The server rejects the
/// request with [`MetaError::WrongEpoch`] when `epoch` is behind the
/// cluster's membership epoch — the live cluster's defence against
/// clients routing by a retired placement plan. The epoch lives at the
/// *frame* layer, not in `RegistryRequest`, so the simulator's wire-size
/// accounting (and the repro pipeline's byte-identical CSVs) are
/// untouched.
pub const MODE_CALL_EPOCH: u8 = 3;

/// Whether a request's placement depends on the membership plan. Only
/// these are epoch-rejected: `Status`/`Reconfigure` must work from stale
/// clients (that is how they learn the new epoch), and
/// `Absorb`/`DeltaPull` are idempotent replication plumbing — the sync
/// agent and lazy pushes keep flowing across a flip; stragglers are
/// swept by the rebalance's second pass.
pub(crate) fn epoch_checked(req: &RegistryRequest) -> bool {
    matches!(
        req,
        RegistryRequest::Get { .. } | RegistryRequest::Put { .. } | RegistryRequest::Remove { .. }
    )
}

/// Tuning for the TCP layer.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Port for site 0 (site *i* binds `base_port + i`); 0 = ephemeral
    /// ports chosen by the OS (tests).
    pub base_port: u16,
    /// Bounded accept pool: at most this many live connection threads per
    /// site; further accepts wait for a slot.
    pub max_conns_per_site: usize,
    /// Connection-thread read poll tick (shutdown observation latency).
    pub read_timeout: Duration,
    /// Client-side deadline for one call's response.
    pub call_timeout: Duration,
    /// Client-side idle connections kept per target site; size to the
    /// expected call concurrency or calls churn fresh handshakes. Only
    /// meaningful for the legacy pool; the pipelined client multiplexes
    /// every call onto one connection per target.
    pub pool_per_site: usize,
    /// Compatibility path: serve each connection on its own blocking
    /// thread (the pre-reactor model) instead of the per-site reactor.
    pub thread_per_conn: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            base_port: 0,
            max_conns_per_site: 128,
            read_timeout: Duration::from_millis(25),
            call_timeout: Duration::from_secs(10),
            pool_per_site: crate::client::DEFAULT_POOL_PER_SITE,
            thread_per_conn: false,
        }
    }
}

/// Counting gate bounding live connection threads per site.
struct ConnGate {
    max: usize,
    live: Mutex<usize>,
    freed: Condvar,
}

impl ConnGate {
    fn new(max: usize) -> Arc<ConnGate> {
        Arc::new(ConnGate {
            max: max.max(1),
            live: Mutex::new(0),
            freed: Condvar::new(),
        })
    }

    fn acquire(&self) {
        let mut live = self.live.lock();
        while *live >= self.max {
            self.freed.wait(&mut live);
        }
        *live += 1;
    }

    fn release(&self) {
        *self.live.lock() -= 1;
        self.freed.notify_one();
    }
}

/// The TCP [`ConnectionLayer`]: binds one loopback listener per site on
/// start, serves framed requests through [`ServiceCore::serve`], and
/// hands out pooling [`TcpClientTransport`]s.
pub struct TcpLayer {
    config: TcpConfig,
    addrs: HashMap<SiteId, SocketAddr>,
    /// One transport shared by every client of this runtime: routing is
    /// per call target, and the connection pool + cast-pump thread are
    /// too expensive to duplicate per client.
    shared: Mutex<Option<Arc<TcpClientTransport>>>,
}

impl TcpLayer {
    /// A layer with the given tuning (not yet bound).
    pub fn new(config: TcpConfig) -> TcpLayer {
        TcpLayer {
            config,
            addrs: HashMap::new(),
            shared: Mutex::new(None),
        }
    }

    /// Ephemeral loopback ports with default tuning (tests, `--spawn`).
    pub fn ephemeral() -> TcpLayer {
        TcpLayer::new(TcpConfig::default())
    }

    /// The bound address of every site (valid after the runtime started).
    pub fn addrs(&self) -> &HashMap<SiteId, SocketAddr> {
        &self.addrs
    }

    /// The layer's tuning.
    pub fn config(&self) -> &TcpConfig {
        &self.config
    }
}

impl ConnectionLayer for TcpLayer {
    type Transport = TcpClientTransport;

    fn start(&mut self, core: &Arc<ServiceCore>, spawner: &mut Spawner) {
        for site in core.topology().site_ids() {
            let port = if self.config.base_port == 0 {
                0
            } else {
                self.config.base_port + site.0
            };
            let listener = TcpListener::bind(("127.0.0.1", port))
                .unwrap_or_else(|e| panic!("bind 127.0.0.1:{port} for {site}: {e}"));
            // geometa-lint: allow(net-unwrap) infallible: local_addr on a freshly bound loopback listener cannot fail, and no peer input is involved
            let addr = listener.local_addr().expect("bound listener has an addr");
            self.addrs.insert(site, addr);
            let core = Arc::clone(core);
            let read_timeout = self.config.read_timeout;
            if self.config.thread_per_conn {
                let gate = ConnGate::new(self.config.max_conns_per_site);
                spawner.spawn(format!("tcp-accept-{site}"), move || {
                    accept_loop(&listener, &core, site, &gate, read_timeout)
                });
            } else {
                let max_conns = self.config.max_conns_per_site;
                spawner.spawn(format!("tcp-reactor-{site}"), move || {
                    reactor_loop(&listener, &core, site, max_conns, read_timeout)
                });
            }
        }
    }

    fn transport(&self, _core: &Arc<ServiceCore>, _site: SiteId) -> Arc<TcpClientTransport> {
        Arc::clone(self.shared.lock().get_or_insert_with(|| {
            Arc::new(TcpClientTransport::new(
                self.addrs.clone(),
                self.config.call_timeout,
                self.config.read_timeout,
            ))
        }))
    }

    fn unblock(&self) {
        // One dummy connection per listener pops its blocking accept; the
        // loop then observes the shutdown flag and drains.
        // geometa-lint: allow(unordered-iter) shutdown poke: every listener gets one connection, order is irrelevant
        for addr in self.addrs.values() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(250));
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    core: &Arc<ServiceCore>,
    site: SiteId,
    gate: &Arc<ConnGate>,
    read_timeout: Duration,
) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Bounded pool: wait for a slot *before* accepting, so the backlog
        // queues in the kernel instead of as unbounded threads.
        gate.acquire();
        if core.is_shutdown() {
            gate.release();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if core.is_shutdown() {
                    gate.release();
                    break;
                }
                // Join (not just drop) finished handles: a connection
                // thread flips `is_finished` before its stack fully
                // unwinds, and "no leaked threads" at shutdown means
                // nothing may still be mid-exit when the drain below
                // returns. Joining a finished thread does not block.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_finished() {
                        let _ = conns.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                let core = Arc::clone(core);
                let thread_gate = Arc::clone(gate);
                // geometa-lint: allow(untracked-thread) connection threads are collected in `conns` and joined in the drain below before accept_loop returns
                let spawned = std::thread::Builder::new()
                    .name(format!("tcp-conn-{site}"))
                    .spawn(move || {
                        core.conn_opened(site);
                        serve_connection(stream, &core, site, read_timeout);
                        core.conn_closed(site);
                        thread_gate.release();
                    });
                match spawned {
                    Ok(h) => conns.push(h),
                    // Thread exhaustion is reachable from connection
                    // pressure: shed this connection (dropping the stream
                    // closed it with the closure) instead of panicking
                    // the accept loop out from under every other client.
                    Err(_) => gate.release(),
                }
            }
            Err(_) => {
                gate.release();
                if core.is_shutdown() {
                    break;
                }
                // A persistently failing accept (e.g. fd exhaustion under
                // EMFILE) must not busy-spin the core; back off briefly so
                // connection threads can finish and release descriptors.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    core: &Arc<ServiceCore>,
    site: SiteId,
    read_timeout: Duration,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    loop {
        loop {
            match reader.next_frame() {
                Ok(Some(body)) => {
                    if !handle_frame(&mut stream, core, site, body) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return, // implausible frame length: drop the conn
            }
        }
        if core.is_shutdown() {
            return;
        }
        match reader.fill(&mut stream) {
            Ok(Fill::Progress) => {}
            Ok(Fill::Idle) => {}
            Ok(Fill::Eof) | Err(_) => return,
        }
    }
}

/// Serve one frame; returns false when the connection should close.
fn handle_frame(
    stream: &mut TcpStream,
    core: &Arc<ServiceCore>,
    site: SiteId,
    body: bytes::Bytes,
) -> bool {
    if body.is_empty() {
        return false;
    }
    let mode = body[0];
    let decoded = RegistryRequest::decode(body.slice(1..));
    match mode {
        MODE_CALL => {
            let resp = match decoded {
                Ok(req) => core.serve(site, req),
                Err(error) => RegistryResponse::Error { error },
            };
            write_frame(stream, &resp.encode())
                .and_then(|()| stream.flush())
                .is_ok()
        }
        MODE_CAST => {
            if let Ok(req) = decoded {
                let _ = core.serve(site, req);
            }
            true
        }
        MODE_CALL_SEQ => {
            let Some((seq, req)) = split_seq(&body) else {
                return false; // truncated seq header: protocol violation
            };
            let resp = match req {
                Ok(req) => core.serve(site, req),
                Err(error) => RegistryResponse::Error { error },
            };
            write_frame(stream, &seq_response_body(seq, &resp))
                .and_then(|()| stream.flush())
                .is_ok()
        }
        MODE_CALL_EPOCH => {
            let Some((seq, epoch, req)) = split_epoch(&body) else {
                return false; // truncated header: protocol violation
            };
            let resp = match req {
                Ok(req) => {
                    let current = core.membership_epoch();
                    if epoch != current && epoch_checked(&req) {
                        RegistryResponse::Error {
                            error: MetaError::WrongEpoch { epoch: current },
                        }
                    } else {
                        core.serve(site, req)
                    }
                }
                Err(error) => RegistryResponse::Error { error },
            };
            write_frame(stream, &seq_response_body(seq, &resp))
                .and_then(|()| stream.flush())
                .is_ok()
        }
        _ => {
            // Unknown mode: answer CALL-style so a confused client fails
            // fast instead of hanging on a missing response.
            let resp = RegistryResponse::Error {
                error: MetaError::Codec(format!("unknown frame mode {mode}")),
            };
            write_frame(stream, &resp.encode()).is_ok()
        }
    }
}

/// Parse a CALL_SEQ body (`[mode][u32_le seq][request]`). `None` means
/// the seq header itself is truncated — a protocol violation.
fn split_seq(body: &bytes::Bytes) -> Option<(u32, Result<RegistryRequest, MetaError>)> {
    if body.len() < 5 {
        return None;
    }
    let seq = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
    Some((seq, RegistryRequest::decode(body.slice(5..))))
}

/// Parse a CALL_EPOCH body (`[mode][u32_le seq][u64_le epoch][request]`).
/// `None` means the header itself is truncated — a protocol violation.
#[allow(clippy::type_complexity)]
fn split_epoch(body: &bytes::Bytes) -> Option<(u32, u64, Result<RegistryRequest, MetaError>)> {
    if body.len() < 13 {
        return None;
    }
    let seq = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
    let mut e = [0u8; 8];
    e.copy_from_slice(&body[5..13]);
    let epoch = u64::from_le_bytes(e);
    Some((seq, epoch, RegistryRequest::decode(body.slice(13..))))
}

/// Response frame body for a CALL_SEQ: `[u32_le seq][response]`.
fn seq_response_body(seq: u32, resp: &RegistryResponse) -> Vec<u8> {
    let encoded = resp.encode();
    let mut out = Vec::with_capacity(4 + encoded.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&encoded);
    out
}

// ---------------------------------------------------------------------------
// Readiness reactor (the default serving model)
// ---------------------------------------------------------------------------

/// Poller key reserved for the site's listener.
const LISTENER_KEY: usize = usize::MAX;
/// Max `FrameReader::fill` calls per connection per readiness pass
/// (≤16 KiB each): bounds how long one firehose connection can hold the
/// reactor. The poller is level-triggered, so leftovers re-fire on the
/// next pass.
const MAX_FILLS_PER_PASS: usize = 16;
/// Pending-output high-water mark: a connection whose peer stops reading
/// accumulates at most this much before the reactor stops *reading* from
/// it (write interest stays armed), pushing backpressure onto the peer
/// instead of into server memory.
const OUT_HIGH_WATER: usize = 4 * 1024 * 1024;

/// What one decoded frame owes the peer.
enum Reply {
    /// CAST: nothing.
    None,
    /// CALL: a bare response frame.
    Bare,
    /// CALL_SEQ: a seq-prefixed response frame.
    Seq(u32),
}

/// A decoded frame on its way to a response.
enum Outcome {
    /// The next `serve_batch` response answers this frame.
    FromBatch(Reply),
    /// Decoding failed; the response is already known.
    Immediate(Reply, RegistryResponse),
}

/// One reactor-managed connection.
struct RConn {
    stream: TcpStream,
    reader: FrameReader,
    /// Pending output; `sent` is the already-flushed prefix.
    out: Vec<u8>,
    sent: usize,
    /// Peer sent EOF: serve what arrived, drain `out`, then close.
    closing: bool,
}

impl RConn {
    fn new(stream: TcpStream) -> RConn {
        RConn {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            sent: 0,
            closing: false,
        }
    }

    /// Drain the readable socket into the frame reader, serve every
    /// complete frame as one ordered batch, queue the responses.
    /// Returns false when the connection must be dropped.
    fn pump_read(&mut self, core: &Arc<ServiceCore>, site: SiteId) -> bool {
        let mut eof = false;
        for _ in 0..MAX_FILLS_PER_PASS {
            match self.reader.fill(&mut self.stream) {
                Ok(Fill::Progress) => continue,
                Ok(Fill::Idle) => break,
                Ok(Fill::Eof) => {
                    eof = true;
                    break;
                }
                Err(_) => return false,
            }
        }
        let ok = self.dispatch(core, site);
        if eof {
            self.closing = true;
        }
        ok
    }

    /// Decode and serve everything buffered. The whole pass becomes one
    /// [`ServiceCore::serve_batch`] call, so pipelined reads collapse
    /// into shard-grouped multi-gets while responses stay in arrival
    /// order — which is also what keeps CALL (unsequenced) correct: its
    /// responses come back in the order the requests went out.
    fn dispatch(&mut self, core: &Arc<ServiceCore>, site: SiteId) -> bool {
        let mut reqs: Vec<RegistryRequest> = Vec::new();
        let mut outcomes: Vec<Outcome> = Vec::new();
        // One epoch read per pass: every frame in a batch is judged
        // against the same epoch (a flip mid-pass rejects from the next
        // pass on, which is within the flip's happens-before anyway).
        let mut current_epoch: Option<u64> = None;
        loop {
            let body = match self.reader.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(_) => return false, // implausible frame length
            };
            if body.is_empty() {
                return false;
            }
            match body[0] {
                MODE_CALL => match RegistryRequest::decode(body.slice(1..)) {
                    Ok(req) => {
                        reqs.push(req);
                        outcomes.push(Outcome::FromBatch(Reply::Bare));
                    }
                    Err(error) => outcomes.push(Outcome::Immediate(
                        Reply::Bare,
                        RegistryResponse::Error { error },
                    )),
                },
                MODE_CAST => {
                    // Valid casts join the batch (they must apply in
                    // arrival order relative to calls); malformed ones
                    // are dropped, as in the threaded path.
                    if let Ok(req) = RegistryRequest::decode(body.slice(1..)) {
                        reqs.push(req);
                        outcomes.push(Outcome::FromBatch(Reply::None));
                    }
                }
                MODE_CALL_SEQ => match split_seq(&body) {
                    None => return false,
                    Some((seq, Ok(req))) => {
                        reqs.push(req);
                        outcomes.push(Outcome::FromBatch(Reply::Seq(seq)));
                    }
                    Some((seq, Err(error))) => outcomes.push(Outcome::Immediate(
                        Reply::Seq(seq),
                        RegistryResponse::Error { error },
                    )),
                },
                MODE_CALL_EPOCH => match split_epoch(&body) {
                    None => return false,
                    Some((seq, epoch, Ok(req))) => {
                        let current = *current_epoch.get_or_insert_with(|| core.membership_epoch());
                        if epoch != current && epoch_checked(&req) {
                            outcomes.push(Outcome::Immediate(
                                Reply::Seq(seq),
                                RegistryResponse::Error {
                                    error: MetaError::WrongEpoch { epoch: current },
                                },
                            ));
                        } else {
                            reqs.push(req);
                            outcomes.push(Outcome::FromBatch(Reply::Seq(seq)));
                        }
                    }
                    Some((seq, _, Err(error))) => outcomes.push(Outcome::Immediate(
                        Reply::Seq(seq),
                        RegistryResponse::Error { error },
                    )),
                },
                mode => outcomes.push(Outcome::Immediate(
                    Reply::Bare,
                    RegistryResponse::Error {
                        error: MetaError::Codec(format!("unknown frame mode {mode}")),
                    },
                )),
            }
        }
        if outcomes.is_empty() {
            return true;
        }
        let mut responses = core.serve_batch(site, reqs).into_iter();
        for outcome in outcomes {
            match outcome {
                Outcome::FromBatch(reply) => match responses.next() {
                    Some(resp) => self.append_reply(reply, &resp),
                    // serve_batch answers every request; a shortfall is a
                    // server-side invariant breach — drop the connection
                    // rather than answer the wrong caller.
                    None => return false,
                },
                Outcome::Immediate(reply, resp) => self.append_reply(reply, &resp),
            }
        }
        true
    }

    /// Queue one response frame on the output buffer.
    fn append_reply(&mut self, reply: Reply, resp: &RegistryResponse) {
        let body: Vec<u8> = match &reply {
            Reply::None => return,
            Reply::Bare => resp.encode().to_vec(),
            Reply::Seq(seq) => seq_response_body(*seq, resp),
        };
        if write_frame(&mut self.out, &body).is_ok() {
            return;
        }
        // Response exceeds the frame cap (a pathological Delta): send an
        // encoded error instead so the caller fails fast rather than
        // timing out on a missing response.
        let err = RegistryResponse::Error {
            error: MetaError::Codec("response exceeds frame cap".to_string()),
        };
        let body = match reply {
            Reply::None => return,
            Reply::Bare => err.encode().to_vec(),
            Reply::Seq(seq) => seq_response_body(seq, &err),
        };
        let _ = write_frame(&mut self.out, &body); // Vec sink: cannot fail under the cap
    }

    /// Push pending output to the kernel. `Ok(true)` = fully drained.
    fn flush_out(&mut self) -> std::io::Result<bool> {
        while self.sent < self.out.len() {
            match self.stream.write(&self.out[self.sent..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Reclaim the flushed prefix when it dominates the
                    // buffer, so a long-lived backlog doesn't pin memory.
                    if self.sent > 256 * 1024 {
                        self.out.drain(..self.sent);
                        self.sent = 0;
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.sent = 0;
        Ok(true)
    }

    /// Poller interest for the connection's current state.
    fn desired_interest(&self, key: usize) -> Event {
        let backlog = self.out.len() - self.sent;
        Event {
            key,
            readable: !self.closing && backlog < OUT_HIGH_WATER,
            writable: backlog > 0,
        }
    }
}

/// The per-site reactor: one thread drives the listener and every
/// connection through nonblocking I/O and the poll shim. Poll waits are
/// bounded by `tick` so the loop observes shutdown even when idle.
fn reactor_loop(
    listener: &TcpListener,
    core: &Arc<ServiceCore>,
    site: SiteId,
    max_conns: usize,
    tick: Duration,
) {
    let max_conns = max_conns.max(1);
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let Ok(poller) = Poller::new() else { return };
    if poller.add(listener, Event::readable(LISTENER_KEY)).is_err() {
        return;
    }
    let mut conns: Vec<Option<RConn>> = Vec::new();
    let mut live = 0usize;
    let mut events: Vec<Event> = Vec::new();
    while !core.is_shutdown() {
        events.clear();
        if poller.wait(&mut events, Some(tick)).is_err() {
            break;
        }
        for &ev in &events {
            if ev.key == LISTENER_KEY {
                accept_ready(
                    listener, core, site, &poller, &mut conns, &mut live, max_conns,
                );
                continue;
            }
            let Some(conn) = conns.get_mut(ev.key).and_then(Option::as_mut) else {
                continue; // closed earlier in this pass
            };
            let mut dead = false;
            if ev.readable && !conn.closing {
                dead = !conn.pump_read(core, site);
            }
            if !dead {
                match conn.flush_out() {
                    Ok(drained) => dead = conn.closing && drained,
                    Err(_) => dead = true,
                }
            }
            if dead {
                close_conn(&poller, &mut conns, ev.key, &mut live, max_conns, listener);
                core.conn_closed(site);
            } else {
                let interest = conn.desired_interest(ev.key);
                if poller.modify(&conn.stream, interest).is_err() {
                    close_conn(&poller, &mut conns, ev.key, &mut live, max_conns, listener);
                    core.conn_closed(site);
                }
            }
        }
    }
    // Dropping the connections closes every socket; in-flight requests
    // were either answered above or die with the connection, which the
    // client surfaces as Unavailable — the same contract as the
    // threaded path at shutdown.
    for conn in conns.into_iter().flatten() {
        drop(conn);
        core.conn_closed(site);
    }
}

/// Accept until the listener would block. At `max_conns` the listener's
/// read interest is paused (further clients queue in the kernel backlog,
/// exactly like the threaded path's gate) and re-armed when a
/// connection closes.
fn accept_ready(
    listener: &TcpListener,
    core: &Arc<ServiceCore>,
    site: SiteId,
    poller: &Poller,
    conns: &mut Vec<Option<RConn>>,
    live: &mut usize,
    max_conns: usize,
) {
    loop {
        if *live >= max_conns {
            let _ = poller.modify(listener, Event::none(LISTENER_KEY));
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if core.is_shutdown() {
                    return; // dummy unblock connection, most likely
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let key = match conns.iter().position(Option::is_none) {
                    Some(k) => k,
                    None => {
                        conns.push(None);
                        conns.len() - 1
                    }
                };
                if poller.add(&stream, Event::readable(key)).is_err() {
                    continue;
                }
                conns[key] = Some(RConn::new(stream));
                *live += 1;
                core.conn_opened(site);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Persistent accept failure (EMFILE and friends) with a
                // pending backlog would spin the poll loop at syscall
                // speed; back off briefly, as the threaded path does.
                std::thread::sleep(Duration::from_millis(10));
                return;
            }
        }
    }
}

/// Deregister and drop one connection, re-arming the listener if the
/// pool was full.
fn close_conn(
    poller: &Poller,
    conns: &mut [Option<RConn>],
    key: usize,
    live: &mut usize,
    max_conns: usize,
    listener: &TcpListener,
) {
    if let Some(conn) = conns[key].take() {
        let _ = poller.delete(&conn.stream);
        *live -= 1;
        if *live == max_conns - 1 {
            let _ = poller.modify(listener, Event::readable(LISTENER_KEY));
        }
    }
}
