//! The framed-TCP connection layer: one listener per site driven by a
//! pool of readiness reactors ([`TcpConfig::reactors`] threads per site,
//! nonblocking sockets multiplexed through the vendored `polling` shim),
//! plus a legacy thread-per-connection accept pool kept as a
//! compatibility path behind [`TcpConfig::thread_per_conn`]. Reactor 0
//! owns the listener and hands accepted connections off round-robin to
//! the pool via per-reactor mailboxes; a connection is owned by exactly
//! one reactor for its lifetime, so connection state is never shared.
//!
//! Wire protocol (on top of [`crate::frame`]):
//!
//! * client → server: frame body = `[mode u8][RegistryRequest]` where
//!   mode 0 = CALL (a response frame follows), mode 1 = CAST
//!   (fire-and-forget, no response), and mode 2 = CALL_SEQ (pipelined
//!   call: a `u32_le` sequence id follows the mode byte and is echoed
//!   ahead of the response, so many calls can be in flight on one
//!   connection and resolve to the right callers regardless of
//!   interleaving);
//! * server → client: frame body = `[RegistryResponse]` for CALL,
//!   `[u32_le seq][RegistryResponse]` for CALL_SEQ.
//!
//! A malformed request never kills a connection's peers: CALLs answer
//! with `RegistryResponse::Error` (the codec is total), CASTs are
//! dropped. The reactor decodes every frame a readiness pass delivered
//! and serves them as one ordered batch through
//! [`ServiceCore::serve_batch`], which groups runs of consecutive reads
//! into shard-grouped `multi_get`s. Poll waits are bounded by the
//! configured tick so the loop observes the runtime's shutdown flag; at
//! shutdown the dummy connection from [`ConnectionLayer::unblock`] also
//! wakes the poller immediately.

use crate::client::TcpClientTransport;
use crate::frame::{write_frame, Fill, FrameReader, MAX_FRAME};
use geometa_core::protocol::{self, RegistryRequest, RegistryResponse};
use geometa_core::runtime::{BatchScratch, ConnectionLayer, ServiceCore, Spawner};
use geometa_core::MetaError;
use geometa_sim::topology::SiteId;
use parking_lot::{Condvar, Mutex};
use polling::{Event, Poller};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Frame-body mode byte: blocking RPC, a response frame follows.
pub const MODE_CALL: u8 = 0;
/// Frame-body mode byte: fire-and-forget, no response.
pub const MODE_CAST: u8 = 1;
/// Frame-body mode byte: pipelined RPC. A `u32_le` sequence id follows
/// the mode byte; the response frame leads with the same id.
pub const MODE_CALL_SEQ: u8 = 2;
/// Frame-body mode byte: epoch-guarded pipelined RPC. Layout
/// `[mode][u32_le seq][u64_le epoch][request]`. The server rejects the
/// request with [`MetaError::WrongEpoch`] when `epoch` is behind the
/// cluster's membership epoch — the live cluster's defence against
/// clients routing by a retired placement plan. The epoch lives at the
/// *frame* layer, not in `RegistryRequest`, so the simulator's wire-size
/// accounting (and the repro pipeline's byte-identical CSVs) are
/// untouched.
pub const MODE_CALL_EPOCH: u8 = 3;

/// Whether a request's placement depends on the membership plan. Only
/// these are epoch-rejected: `Status`/`Reconfigure` must work from stale
/// clients (that is how they learn the new epoch), and
/// `Absorb`/`DeltaPull` are idempotent replication plumbing — the sync
/// agent and lazy pushes keep flowing across a flip; stragglers are
/// swept by the rebalance's second pass.
pub(crate) fn epoch_checked(req: &RegistryRequest) -> bool {
    matches!(
        req,
        RegistryRequest::Get { .. } | RegistryRequest::Put { .. } | RegistryRequest::Remove { .. }
    )
}

/// Tuning for the TCP layer.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Port for site 0 (site *i* binds `base_port + i`); 0 = ephemeral
    /// ports chosen by the OS (tests).
    pub base_port: u16,
    /// Bounded accept pool: at most this many live connection threads per
    /// site; further accepts wait for a slot.
    pub max_conns_per_site: usize,
    /// Connection-thread read poll tick (shutdown observation latency).
    pub read_timeout: Duration,
    /// Client-side deadline for one call's response.
    pub call_timeout: Duration,
    /// Client-side idle connections kept per target site; size to the
    /// expected call concurrency or calls churn fresh handshakes. Only
    /// meaningful for the legacy pool; the pipelined client multiplexes
    /// every call onto one connection per target.
    pub pool_per_site: usize,
    /// Compatibility path: serve each connection on its own blocking
    /// thread (the pre-reactor model) instead of the per-site reactor.
    pub thread_per_conn: bool,
    /// Reactor threads per site. 0 = auto (`min(4, cores)`). Reactor 0
    /// owns the listener and hands accepted connections off round-robin
    /// to the pool; a connection lives on one reactor for its lifetime.
    pub reactors: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            base_port: 0,
            max_conns_per_site: 128,
            read_timeout: Duration::from_millis(25),
            call_timeout: Duration::from_secs(10),
            pool_per_site: crate::client::DEFAULT_POOL_PER_SITE,
            thread_per_conn: false,
            reactors: 0,
        }
    }
}

impl TcpConfig {
    /// The reactor-pool size this config resolves to (`reactors`, or
    /// `min(4, cores)` when 0/auto).
    pub fn resolved_reactors(&self) -> usize {
        if self.reactors != 0 {
            return self.reactors;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }
}

/// Counting gate bounding live connection threads per site.
struct ConnGate {
    max: usize,
    live: Mutex<usize>,
    freed: Condvar,
}

impl ConnGate {
    fn new(max: usize) -> Arc<ConnGate> {
        Arc::new(ConnGate {
            max: max.max(1),
            live: Mutex::new(0),
            freed: Condvar::new(),
        })
    }

    fn acquire(&self) {
        let mut live = self.live.lock();
        while *live >= self.max {
            self.freed.wait(&mut live);
        }
        *live += 1;
    }

    fn release(&self) {
        *self.live.lock() -= 1;
        self.freed.notify_one();
    }
}

/// The TCP [`ConnectionLayer`]: binds one loopback listener per site on
/// start, serves framed requests through [`ServiceCore::serve`], and
/// hands out pooling [`TcpClientTransport`]s.
pub struct TcpLayer {
    config: TcpConfig,
    addrs: HashMap<SiteId, SocketAddr>,
    /// One transport shared by every client of this runtime: routing is
    /// per call target, and the connection pool + cast-pump thread are
    /// too expensive to duplicate per client.
    shared: Mutex<Option<Arc<TcpClientTransport>>>,
}

impl TcpLayer {
    /// A layer with the given tuning (not yet bound).
    pub fn new(config: TcpConfig) -> TcpLayer {
        TcpLayer {
            config,
            addrs: HashMap::new(),
            shared: Mutex::new(None),
        }
    }

    /// Ephemeral loopback ports with default tuning (tests, `--spawn`).
    pub fn ephemeral() -> TcpLayer {
        TcpLayer::new(TcpConfig::default())
    }

    /// The bound address of every site (valid after the runtime started).
    pub fn addrs(&self) -> &HashMap<SiteId, SocketAddr> {
        &self.addrs
    }

    /// The layer's tuning.
    pub fn config(&self) -> &TcpConfig {
        &self.config
    }
}

impl ConnectionLayer for TcpLayer {
    type Transport = TcpClientTransport;

    fn start(&mut self, core: &Arc<ServiceCore>, spawner: &mut Spawner) {
        for site in core.topology().site_ids() {
            let port = if self.config.base_port == 0 {
                0
            } else {
                self.config.base_port + site.0
            };
            let listener = TcpListener::bind(("127.0.0.1", port))
                .unwrap_or_else(|e| panic!("bind 127.0.0.1:{port} for {site}: {e}"));
            // geometa-lint: allow(net-unwrap) infallible: local_addr on a freshly bound loopback listener cannot fail, and no peer input is involved
            let addr = listener.local_addr().expect("bound listener has an addr");
            self.addrs.insert(site, addr);
            let core = Arc::clone(core);
            let read_timeout = self.config.read_timeout;
            if self.config.thread_per_conn {
                let gate = ConnGate::new(self.config.max_conns_per_site);
                spawner.spawn(format!("tcp-accept-{site}"), move || {
                    accept_loop(&listener, &core, site, &gate, read_timeout)
                });
            } else {
                let max_conns = self.config.max_conns_per_site;
                let pool = self.config.resolved_reactors().max(1);
                // One live-connection counter shared by the whole pool:
                // the listener pauses against the *site* total, exactly
                // like the single-reactor gate did.
                let live = Arc::new(AtomicUsize::new(0));
                let mut peers: Vec<Arc<ReactorInbox>> = Vec::new();
                for k in 1..pool {
                    let Ok((wake_tx, wake_rx)) = UnixStream::pair() else {
                        break; // fd pressure: serve with fewer reactors
                    };
                    if wake_tx.set_nonblocking(true).is_err()
                        || wake_rx.set_nonblocking(true).is_err()
                    {
                        break;
                    }
                    let inbox = Arc::new(ReactorInbox {
                        queue: Mutex::new(Vec::new()),
                        wake: wake_tx,
                    });
                    peers.push(Arc::clone(&inbox));
                    let core = Arc::clone(&core);
                    let live = Arc::clone(&live);
                    spawner.spawn(format!("tcp-reactor-{site}-{k}"), move || {
                        let role = ReactorRole::Worker { inbox, wake_rx };
                        reactor_loop(role, &core, site, &live, max_conns, read_timeout)
                    });
                }
                spawner.spawn(format!("tcp-reactor-{site}"), move || {
                    let role = ReactorRole::Accepting { listener, peers };
                    reactor_loop(role, &core, site, &live, max_conns, read_timeout)
                });
            }
        }
    }

    fn transport(&self, _core: &Arc<ServiceCore>, _site: SiteId) -> Arc<TcpClientTransport> {
        Arc::clone(self.shared.lock().get_or_insert_with(|| {
            Arc::new(TcpClientTransport::new(
                self.addrs.clone(),
                self.config.call_timeout,
                self.config.read_timeout,
            ))
        }))
    }

    fn unblock(&self) {
        // One dummy connection per listener pops its blocking accept; the
        // loop then observes the shutdown flag and drains.
        // geometa-lint: allow(unordered-iter) shutdown poke: every listener gets one connection, order is irrelevant
        for addr in self.addrs.values() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(250));
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    core: &Arc<ServiceCore>,
    site: SiteId,
    gate: &Arc<ConnGate>,
    read_timeout: Duration,
) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Bounded pool: wait for a slot *before* accepting, so the backlog
        // queues in the kernel instead of as unbounded threads.
        gate.acquire();
        if core.is_shutdown() {
            gate.release();
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if core.is_shutdown() {
                    gate.release();
                    break;
                }
                // Join (not just drop) finished handles: a connection
                // thread flips `is_finished` before its stack fully
                // unwinds, and "no leaked threads" at shutdown means
                // nothing may still be mid-exit when the drain below
                // returns. Joining a finished thread does not block.
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_finished() {
                        let _ = conns.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                let core = Arc::clone(core);
                let thread_gate = Arc::clone(gate);
                // geometa-lint: allow(untracked-thread) connection threads are collected in `conns` and joined in the drain below before accept_loop returns
                let spawned = std::thread::Builder::new()
                    .name(format!("tcp-conn-{site}"))
                    .spawn(move || {
                        core.conn_opened(site);
                        serve_connection(stream, &core, site, read_timeout);
                        core.conn_closed(site);
                        thread_gate.release();
                    });
                match spawned {
                    Ok(h) => conns.push(h),
                    // Thread exhaustion is reachable from connection
                    // pressure: shed this connection (dropping the stream
                    // closed it with the closure) instead of panicking
                    // the accept loop out from under every other client.
                    Err(_) => gate.release(),
                }
            }
            Err(_) => {
                gate.release();
                if core.is_shutdown() {
                    break;
                }
                // A persistently failing accept (e.g. fd exhaustion under
                // EMFILE) must not busy-spin the core; back off briefly so
                // connection threads can finish and release descriptors.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    core: &Arc<ServiceCore>,
    site: SiteId,
    read_timeout: Duration,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    loop {
        loop {
            match reader.next_frame() {
                Ok(Some(body)) => {
                    if !handle_frame(&mut stream, core, site, body) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return, // implausible frame length: drop the conn
            }
        }
        if core.is_shutdown() {
            return;
        }
        match reader.fill(&mut stream) {
            Ok(Fill::Progress) => {}
            Ok(Fill::Idle) => {}
            Ok(Fill::Eof) | Err(_) => return,
        }
    }
}

/// Serve one frame; returns false when the connection should close.
fn handle_frame(
    stream: &mut TcpStream,
    core: &Arc<ServiceCore>,
    site: SiteId,
    body: bytes::Bytes,
) -> bool {
    if body.is_empty() {
        return false;
    }
    let mode = body[0];
    let decoded = RegistryRequest::decode(body.slice(1..));
    match mode {
        MODE_CALL => {
            let resp = match decoded {
                Ok(req) => core.serve(site, req),
                Err(error) => RegistryResponse::Error { error },
            };
            write_frame(stream, &resp.encode())
                .and_then(|()| stream.flush())
                .is_ok()
        }
        MODE_CAST => {
            if let Ok(req) = decoded {
                let _ = core.serve(site, req);
            }
            true
        }
        MODE_CALL_SEQ => {
            let Some((seq, req)) = split_seq(&body) else {
                return false; // truncated seq header: protocol violation
            };
            let resp = match req {
                Ok(req) => core.serve(site, req),
                Err(error) => RegistryResponse::Error { error },
            };
            write_frame(stream, &seq_response_body(seq, &resp))
                .and_then(|()| stream.flush())
                .is_ok()
        }
        MODE_CALL_EPOCH => {
            let Some((seq, epoch, req)) = split_epoch(&body) else {
                return false; // truncated header: protocol violation
            };
            let resp = match req {
                Ok(req) => {
                    let current = core.membership_epoch();
                    if epoch != current && epoch_checked(&req) {
                        RegistryResponse::Error {
                            error: MetaError::WrongEpoch { epoch: current },
                        }
                    } else {
                        core.serve(site, req)
                    }
                }
                Err(error) => RegistryResponse::Error { error },
            };
            write_frame(stream, &seq_response_body(seq, &resp))
                .and_then(|()| stream.flush())
                .is_ok()
        }
        _ => {
            // Unknown mode: answer CALL-style so a confused client fails
            // fast instead of hanging on a missing response.
            let resp = RegistryResponse::Error {
                error: MetaError::Codec(format!("unknown frame mode {mode}")),
            };
            write_frame(stream, &resp.encode()).is_ok()
        }
    }
}

/// Parse a CALL_SEQ body (`[mode][u32_le seq][request]`). `None` means
/// the seq header itself is truncated — a protocol violation.
fn split_seq(body: &bytes::Bytes) -> Option<(u32, Result<RegistryRequest, MetaError>)> {
    if body.len() < 5 {
        return None;
    }
    let seq = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
    Some((seq, RegistryRequest::decode(body.slice(5..))))
}

/// Parse a CALL_EPOCH body (`[mode][u32_le seq][u64_le epoch][request]`).
/// `None` means the header itself is truncated — a protocol violation.
#[allow(clippy::type_complexity)]
fn split_epoch(body: &bytes::Bytes) -> Option<(u32, u64, Result<RegistryRequest, MetaError>)> {
    if body.len() < 13 {
        return None;
    }
    let seq = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
    let mut e = [0u8; 8];
    e.copy_from_slice(&body[5..13]);
    let epoch = u64::from_le_bytes(e);
    Some((seq, epoch, RegistryRequest::decode(body.slice(13..))))
}

/// Response frame body for a CALL_SEQ: `[u32_le seq][response]`.
fn seq_response_body(seq: u32, resp: &RegistryResponse) -> Vec<u8> {
    let encoded = resp.encode();
    let mut out = Vec::with_capacity(4 + encoded.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&encoded);
    out
}

// ---------------------------------------------------------------------------
// Readiness reactor (the default serving model)
// ---------------------------------------------------------------------------

/// Poller key reserved for the site's listener.
const LISTENER_KEY: usize = usize::MAX;
/// Max `FrameReader::fill` calls per connection per readiness pass
/// (≤16 KiB each): bounds how long one firehose connection can hold the
/// reactor. The poller is level-triggered, so leftovers re-fire on the
/// next pass.
const MAX_FILLS_PER_PASS: usize = 16;
/// Pending-output high-water mark: a connection whose peer stops reading
/// accumulates at most this much before the reactor stops *reading* from
/// it (write interest stays armed), pushing backpressure onto the peer
/// instead of into server memory.
const OUT_HIGH_WATER: usize = 4 * 1024 * 1024;

/// Poller key reserved for a worker reactor's hand-off wake pipe.
const INBOX_WAKE_KEY: usize = usize::MAX - 1;

/// Hand-off mailbox from the accepting reactor to a worker reactor:
/// freshly accepted streams queue here and a byte on the wake pipe pops
/// the worker's poll wait.
struct ReactorInbox {
    queue: Mutex<Vec<TcpStream>>,
    /// Write end of the worker's wake pipe (nonblocking: a full pipe
    /// means wakes are already pending, so a dropped byte is harmless).
    wake: UnixStream,
}

/// Which job a reactor thread performs in the per-site pool.
enum ReactorRole {
    /// Reactor 0: owns the listener, serves its own share of the
    /// connections, hands the rest off round-robin.
    Accepting {
        listener: TcpListener,
        peers: Vec<Arc<ReactorInbox>>,
    },
    /// Reactors 1..n: serve the connections pushed into their inbox.
    Worker {
        inbox: Arc<ReactorInbox>,
        wake_rx: UnixStream,
    },
}

/// What one decoded frame owes the peer.
enum Reply {
    /// CAST: nothing.
    None,
    /// CALL: a bare response frame.
    Bare,
    /// CALL_SEQ: a seq-prefixed response frame.
    Seq(u32),
}

/// A decoded frame on its way to a response.
enum Outcome {
    /// Answered by the pass's borrowed-key read run, in get order.
    FromGets(Reply),
    /// Answered by the pass's `serve_batch_into` call, in batch order.
    FromBatch(Reply),
    /// The response is already known (decode error, epoch reject).
    Immediate(Reply, RegistryResponse),
}

/// One reactor-managed connection. The scratch vectors at the bottom are
/// the allocation story of the wire path: cleared and reused every
/// readiness pass, they reach a high-water mark during warmup and the
/// steady state never touches the allocator again.
struct RConn {
    stream: TcpStream,
    reader: FrameReader,
    /// Pending output; `sent` is the already-flushed prefix.
    out: Vec<u8>,
    sent: usize,
    /// Peer sent EOF: serve what arrived, drain `out`, then close.
    closing: bool,
    /// One entry per frame of the current pass, in arrival order.
    outcomes: Vec<Outcome>,
    /// Owned (non-get) requests of the pass, drained by `serve_batch_into`.
    reqs: Vec<RegistryRequest>,
    /// Responses to `reqs`, appended by `serve_batch_into`.
    resps: Vec<RegistryResponse>,
    /// Byte ranges (into `reader`'s buffer) of borrowed get keys.
    get_keys: Vec<std::ops::Range<usize>>,
    /// Responses to the borrowed gets, appended by `serve_gets`.
    get_resps: Vec<RegistryResponse>,
    /// The core's own per-batch scratch, held per connection.
    batch: BatchScratch,
}

impl RConn {
    fn new(stream: TcpStream) -> RConn {
        RConn {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            sent: 0,
            closing: false,
            outcomes: Vec::new(),
            reqs: Vec::new(),
            resps: Vec::new(),
            get_keys: Vec::new(),
            get_resps: Vec::new(),
            batch: BatchScratch::default(),
        }
    }

    /// Drain the readable socket into the frame reader, serve every
    /// complete frame as one ordered batch, queue the responses.
    /// Returns false when the connection must be dropped.
    fn pump_read(&mut self, core: &Arc<ServiceCore>, site: SiteId) -> bool {
        let mut eof = false;
        for _ in 0..MAX_FILLS_PER_PASS {
            match self.reader.fill(&mut self.stream) {
                Ok(Fill::Progress) => continue,
                Ok(Fill::Idle) => break,
                Ok(Fill::Eof) => {
                    eof = true;
                    break;
                }
                Err(_) => return false,
            }
        }
        let ok = self.dispatch(core, site);
        if eof {
            self.closing = true;
        }
        ok
    }

    /// Decode and serve everything buffered, replying into `out` in
    /// arrival order — which is what keeps CALL (unsequenced) correct:
    /// its responses come back in the order the requests went out.
    ///
    /// The zero-allocation path: frames are popped as *ranges* into the
    /// reader's buffer, `Get` keys stay borrowed `&str` views resolved
    /// through [`ServiceCore::serve_gets`], and responses are encoded
    /// in place behind the frame header by [`append_reply`]. Only
    /// non-get requests are materialized and decoded into owned form,
    /// then served as one ordered [`ServiceCore::serve_batch_into`]
    /// call (whole-batch shard-grouped reads, one WAL append).
    // geometa-hot
    fn dispatch(&mut self, core: &Arc<ServiceCore>, site: SiteId) -> bool {
        self.outcomes.clear();
        self.reqs.clear();
        self.resps.clear();
        self.get_keys.clear();
        self.get_resps.clear();
        // One epoch read per pass: every frame in a batch is judged
        // against the same epoch (a flip mid-pass rejects from the next
        // pass on, which is within the flip's happens-before anyway).
        let mut current_epoch: Option<u64> = None;
        loop {
            let range = match self.reader.next_frame_range() {
                Ok(Some(range)) => range,
                Ok(None) => break,
                Err(_) => return false, // implausible frame length
            };
            let body = self.reader.view(range.clone());
            if body.is_empty() {
                return false;
            }
            // Header split: reply owed, payload offset, frame epoch.
            let (reply, off, frame_epoch) = match body[0] {
                MODE_CALL => (Reply::Bare, 1usize, None),
                MODE_CAST => (Reply::None, 1, None),
                MODE_CALL_SEQ => {
                    if body.len() < 5 {
                        return false; // truncated seq header
                    }
                    let seq = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
                    (Reply::Seq(seq), 5, None)
                }
                MODE_CALL_EPOCH => {
                    if body.len() < 13 {
                        return false; // truncated header
                    }
                    let seq = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
                    let mut e = [0u8; 8];
                    e.copy_from_slice(&body[5..13]);
                    (Reply::Seq(seq), 13, Some(u64::from_le_bytes(e)))
                }
                mode => {
                    self.outcomes.push(Outcome::Immediate(
                        Reply::Bare,
                        RegistryResponse::Error {
                            // geometa-lint: allow(hot-alloc) malformed-frame error path, never steady state
                            error: MetaError::Codec(format!("unknown frame mode {mode}")),
                        },
                    ));
                    continue;
                }
            };
            let payload = &body[off..];
            // Borrowed-GET fast path: the key never leaves the read
            // buffer. Gets are always epoch-checked, so a stale frame is
            // rejected before any decode. Cast gets (legal, pointless)
            // fall through to the owned batch so their reads still count.
            if protocol::decode_get_key(payload).is_some() {
                if let Some(epoch) = frame_epoch {
                    let current = *current_epoch.get_or_insert_with(|| core.membership_epoch());
                    if epoch != current {
                        self.outcomes.push(Outcome::Immediate(
                            reply,
                            RegistryResponse::Error {
                                error: MetaError::WrongEpoch { epoch: current },
                            },
                        ));
                        continue;
                    }
                }
                if !matches!(reply, Reply::None) {
                    self.get_keys.push(range.start + off + 5..range.end);
                    self.outcomes.push(Outcome::FromGets(reply));
                    continue;
                }
            }
            // Owned path: everything that mutates or replicates escapes
            // the read buffer (its decoded `MetaStr`s outlive the pass).
            let owned = self.reader.materialize(range.start + off..range.end);
            match RegistryRequest::decode(owned) {
                Ok(req) => {
                    if let Some(epoch) = frame_epoch {
                        let current = *current_epoch.get_or_insert_with(|| core.membership_epoch());
                        if epoch != current && epoch_checked(&req) {
                            self.outcomes.push(Outcome::Immediate(
                                reply,
                                RegistryResponse::Error {
                                    error: MetaError::WrongEpoch { epoch: current },
                                },
                            ));
                            continue;
                        }
                    }
                    self.reqs.push(req);
                    self.outcomes.push(Outcome::FromBatch(reply));
                }
                Err(error) => {
                    // Malformed casts are dropped, as in the threaded path.
                    if !matches!(reply, Reply::None) {
                        self.outcomes
                            .push(Outcome::Immediate(reply, RegistryResponse::Error { error }));
                    }
                }
            }
        }
        if self.outcomes.is_empty() {
            return true;
        }
        // Resolve the borrowed reads: a single get probes the store with
        // no allocation at all; two or more share shard locks through
        // one grouped read (the collect below is amortized over ≥2).
        match self.get_keys.len() {
            0 => {}
            1 => {
                let key_bytes = self.reader.view(self.get_keys[0].clone());
                let key = std::str::from_utf8(key_bytes).unwrap_or("");
                core.serve_gets(site, &[key], &mut self.get_resps);
            }
            _ => {
                let keys: Vec<&str> = self
                    .get_keys
                    .iter()
                    .map(|r| std::str::from_utf8(self.reader.view(r.clone())).unwrap_or(""))
                    // geometa-lint: allow(hot-alloc) amortized over >=2 gets per pass; the single-get path above is the strictly allocation-free one
                    .collect();
                core.serve_gets(site, &keys, &mut self.get_resps);
            }
        }
        if !self.reqs.is_empty() {
            core.serve_batch_into(site, &mut self.reqs, &mut self.resps, &mut self.batch);
        }
        // Weave the two response runs back into arrival order.
        let (mut gi, mut bi) = (0usize, 0usize);
        for outcome in &self.outcomes {
            let (reply, resp) = match outcome {
                Outcome::FromGets(reply) => match self.get_resps.get(gi) {
                    Some(resp) => {
                        gi += 1;
                        (reply, resp)
                    }
                    // serve_gets/serve_batch_into answer every request; a
                    // shortfall is a server-side invariant breach — drop
                    // the connection rather than answer the wrong caller.
                    None => return false,
                },
                Outcome::FromBatch(reply) => match self.resps.get(bi) {
                    Some(resp) => {
                        bi += 1;
                        (reply, resp)
                    }
                    None => return false,
                },
                Outcome::Immediate(reply, resp) => (reply, resp),
            };
            append_reply(&mut self.out, reply, resp);
        }
        true
    }

    /// Push pending output to the kernel. `Ok(true)` = fully drained.
    fn flush_out(&mut self) -> std::io::Result<bool> {
        while self.sent < self.out.len() {
            match self.stream.write(&self.out[self.sent..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Reclaim the flushed prefix when it dominates the
                    // buffer, so a long-lived backlog doesn't pin memory.
                    if self.sent > 256 * 1024 {
                        self.out.drain(..self.sent);
                        self.sent = 0;
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.sent = 0;
        Ok(true)
    }

    /// Poller interest for the connection's current state.
    fn desired_interest(&self, key: usize) -> Event {
        let backlog = self.out.len() - self.sent;
        Event {
            key,
            readable: !self.closing && backlog < OUT_HIGH_WATER,
            writable: backlog > 0,
        }
    }
}

/// Queue one response frame on `out`, encoding the response *in place*
/// behind its frame header — no intermediate body buffer. The length
/// prefix is exact up front because [`RegistryResponse::encoded_len`]
/// is, which the debug assert pins.
// geometa-hot
fn append_reply(out: &mut Vec<u8>, reply: &Reply, resp: &RegistryResponse) {
    let (seq, seq_len) = match reply {
        Reply::None => return,
        Reply::Bare => (0u32, 0usize),
        Reply::Seq(seq) => (*seq, 4usize),
    };
    let body_len = seq_len + resp.encoded_len();
    if body_len > MAX_FRAME {
        // Response exceeds the frame cap (a pathological Delta): send an
        // encoded error instead so the caller fails fast rather than
        // timing out on a missing response.
        let err = RegistryResponse::Error {
            // geometa-lint: allow(hot-alloc) pathological oversize-response path, never steady state
            error: MetaError::Codec("response exceeds frame cap".to_string()),
        };
        append_reply(out, reply, &err);
        return;
    }
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    if seq_len == 4 {
        out.extend_from_slice(&seq.to_le_bytes());
    }
    let before = out.len();
    resp.encode_into(out);
    debug_assert_eq!(out.len() - before, resp.encoded_len());
}

/// One reactor thread of the per-site pool: drives its share of the
/// connections (plus, for reactor 0, the listener) through nonblocking
/// I/O and the poll shim. Poll waits are bounded by `tick` so the loop
/// observes shutdown even when idle; workers additionally wake on their
/// inbox pipe when the accepting reactor hands a connection off.
fn reactor_loop(
    role: ReactorRole,
    core: &Arc<ServiceCore>,
    site: SiteId,
    live: &AtomicUsize,
    max_conns: usize,
    tick: Duration,
) {
    let max_conns = max_conns.max(1);
    let Ok(poller) = Poller::new() else { return };
    match &role {
        ReactorRole::Accepting { listener, .. } => {
            if listener.set_nonblocking(true).is_err() {
                return;
            }
            if poller.add(listener, Event::readable(LISTENER_KEY)).is_err() {
                return;
            }
        }
        ReactorRole::Worker { wake_rx, .. } => {
            if poller
                .add(wake_rx, Event::readable(INBOX_WAKE_KEY))
                .is_err()
            {
                return;
            }
        }
    }
    let mut conns: Vec<Option<RConn>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut next_target = 0usize; // round-robin cursor (accepting reactor)
    let mut listener_paused = false;
    while !core.is_shutdown() {
        events.clear();
        if poller.wait(&mut events, Some(tick)).is_err() {
            break;
        }
        // Re-arm a paused listener once the pool has room again. Any
        // reactor may have freed the slot; reactor 0 notices within one
        // tick — the same latency class as the threaded gate's wakeup.
        if listener_paused && live.load(Ordering::SeqCst) < max_conns {
            if let ReactorRole::Accepting { listener, .. } = &role {
                if poller
                    .modify(listener, Event::readable(LISTENER_KEY))
                    .is_ok()
                {
                    listener_paused = false;
                }
            }
        }
        for &ev in &events {
            if ev.key == LISTENER_KEY {
                if let ReactorRole::Accepting { listener, peers } = &role {
                    accept_ready(
                        listener,
                        core,
                        site,
                        &poller,
                        &mut conns,
                        live,
                        max_conns,
                        peers,
                        &mut next_target,
                        &mut listener_paused,
                    );
                }
                continue;
            }
            if ev.key == INBOX_WAKE_KEY {
                if let ReactorRole::Worker { inbox, wake_rx } = &role {
                    drain_wake(wake_rx);
                    adopt_handoffs(inbox, core, site, &poller, &mut conns, live);
                }
                continue;
            }
            let Some(conn) = conns.get_mut(ev.key).and_then(Option::as_mut) else {
                continue; // closed earlier in this pass
            };
            let mut dead = false;
            if ev.readable && !conn.closing {
                dead = !conn.pump_read(core, site);
            }
            if !dead {
                match conn.flush_out() {
                    Ok(drained) => dead = conn.closing && drained,
                    Err(_) => dead = true,
                }
            }
            if dead {
                close_conn(&poller, &mut conns, ev.key, live);
                core.conn_closed(site);
            } else {
                let interest = conn.desired_interest(ev.key);
                if poller.modify(&conn.stream, interest).is_err() {
                    close_conn(&poller, &mut conns, ev.key, live);
                    core.conn_closed(site);
                }
            }
        }
    }
    // Dropping the connections closes every socket; in-flight requests
    // were either answered above or die with the connection, which the
    // client surfaces as Unavailable — the same contract as the
    // threaded path at shutdown.
    for conn in conns.into_iter().flatten() {
        drop(conn);
        live.fetch_sub(1, Ordering::SeqCst);
        core.conn_closed(site);
    }
    // Hand-offs that were queued but never adopted were counted at
    // accept time; close them out so the conn counters stay balanced.
    if let ReactorRole::Worker { inbox, .. } = &role {
        for stream in inbox.queue.lock().drain(..) {
            drop(stream);
            live.fetch_sub(1, Ordering::SeqCst);
            core.conn_closed(site);
        }
    }
}

/// Accept until the listener would block, distributing connections
/// round-robin over the reactor pool (slot 0 = the accepting reactor
/// itself). At `max_conns` *site-wide* the listener's read interest is
/// paused (further clients queue in the kernel backlog, exactly like
/// the threaded path's gate) and re-armed when a connection closes.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    core: &Arc<ServiceCore>,
    site: SiteId,
    poller: &Poller,
    conns: &mut Vec<Option<RConn>>,
    live: &AtomicUsize,
    max_conns: usize,
    peers: &[Arc<ReactorInbox>],
    next_target: &mut usize,
    listener_paused: &mut bool,
) {
    loop {
        if live.load(Ordering::SeqCst) >= max_conns {
            if poller.modify(listener, Event::none(LISTENER_KEY)).is_ok() {
                *listener_paused = true;
            }
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if core.is_shutdown() {
                    return; // dummy unblock connection, most likely
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                live.fetch_add(1, Ordering::SeqCst);
                core.conn_opened(site);
                let target = *next_target;
                *next_target = (*next_target + 1) % (peers.len() + 1);
                if target == 0 {
                    if !adopt_conn(poller, conns, stream) {
                        live.fetch_sub(1, Ordering::SeqCst);
                        core.conn_closed(site);
                    }
                } else {
                    let inbox = &peers[target - 1];
                    inbox.queue.lock().push(stream);
                    // One byte wakes the worker; WouldBlock on a full
                    // pipe means wakes are already pending.
                    let _ = (&inbox.wake).write(&[1u8]);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Persistent accept failure (EMFILE and friends) with a
                // pending backlog would spin the poll loop at syscall
                // speed; back off briefly, as the threaded path does.
                std::thread::sleep(Duration::from_millis(10));
                return;
            }
        }
    }
}

/// Register one stream with this reactor's poller. Returns false when
/// registration failed (dropping the stream closes it).
fn adopt_conn(poller: &Poller, conns: &mut Vec<Option<RConn>>, stream: TcpStream) -> bool {
    let key = match conns.iter().position(Option::is_none) {
        Some(k) => k,
        None => {
            conns.push(None);
            conns.len() - 1
        }
    };
    if poller.add(&stream, Event::readable(key)).is_err() {
        return false;
    }
    conns[key] = Some(RConn::new(stream));
    true
}

/// Adopt every connection the accepting reactor queued on this worker's
/// inbox. Streams arrive already nonblocking + nodelay and counted in
/// `live`/`conn_opened`.
fn adopt_handoffs(
    inbox: &ReactorInbox,
    core: &Arc<ServiceCore>,
    site: SiteId,
    poller: &Poller,
    conns: &mut Vec<Option<RConn>>,
    live: &AtomicUsize,
) {
    let mut queue = inbox.queue.lock();
    for stream in queue.drain(..) {
        if !adopt_conn(poller, conns, stream) {
            live.fetch_sub(1, Ordering::SeqCst);
            core.conn_closed(site);
        }
    }
}

/// Drain the wake pipe so its level-triggered readability clears.
fn drain_wake(mut wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    loop {
        match wake_rx.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(_) => continue,
        }
    }
}

/// Deregister and drop one connection. The accepting reactor re-arms a
/// paused listener on its next pass once `live` drops below the cap.
fn close_conn(poller: &Poller, conns: &mut [Option<RConn>], key: usize, live: &AtomicUsize) {
    if let Some(conn) = conns[key].take() {
        let _ = poller.delete(&conn.stream);
        live.fetch_sub(1, Ordering::SeqCst);
    }
}
