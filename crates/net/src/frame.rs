//! Length-prefixed framing over byte streams.
//!
//! A frame is `u32_le body_len` followed by `body_len` bytes. The reader
//! is *incremental*: it accumulates whatever the stream yields and pops
//! complete frames when available, so a read timeout in the middle of a
//! frame (the server's shutdown-observation tick) loses nothing — the
//! partial bytes stay buffered and the next fill continues where the
//! stream left off.

use bytes::Bytes;
use std::io::{Read, Write};

/// Hard cap on one frame body; larger prefixes are a protocol error
/// (protects the server from a garbage length burning 4 GiB).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Write one frame (length prefix + body). Errors with `InvalidData`
/// when the body exceeds [`MAX_FRAME`] — in release builds too; the peer
/// would reject the oversized length prefix mid-stream, which is a far
/// worse failure than refusing to send.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(oversized(body.len()));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Write one frame whose body is a mode byte followed by `body` — without
/// materializing the concatenation (the request hot path would otherwise
/// copy every encoded message just to prepend one byte). Two writes: a
/// 5-byte stack header, then the payload. The mode byte counts against
/// [`MAX_FRAME`]: the frame body on the wire is `body.len() + 1` bytes.
pub fn write_frame_with_mode(w: &mut impl Write, mode: u8, body: &[u8]) -> std::io::Result<()> {
    if body.len() + 1 > MAX_FRAME {
        return Err(oversized(body.len() + 1));
    }
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&((body.len() + 1) as u32).to_le_bytes());
    head[4] = mode;
    w.write_all(&head)?;
    w.write_all(body)
}

fn oversized(len: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("frame body {len} exceeds cap {MAX_FRAME}"),
    )
}

/// What one [`FrameReader::fill`] call observed on the stream.
#[derive(Debug, PartialEq, Eq)]
pub enum Fill {
    /// Bytes arrived (complete frames may now be poppable).
    Progress,
    /// The peer closed the stream cleanly.
    Eof,
    /// The read timed out / would block; buffered state is intact.
    Idle,
}

/// Incremental frame decoder for a blocking (possibly timeout-armed)
/// stream.
///
/// Consumed frames advance a cursor instead of memmoving the buffer
/// tail, so popping N pipelined frames is O(total bytes), not
/// O(N × buffered). The one remaining copy per frame (buffer → owned
/// `Bytes`) is what lets the decoded message's `MetaStr` views outlive
/// the reusable read buffer.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    start: usize,
}

impl FrameReader {
    /// A fresh reader with no buffered bytes.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Pull more bytes off `r`. Timeouts surface as [`Fill::Idle`] rather
    /// than errors so callers can poll a shutdown flag and carry on.
    pub fn fill(&mut self, r: &mut impl Read) -> std::io::Result<Fill> {
        let mut chunk = [0u8; 16 * 1024];
        match r.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.compact();
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Fill::Progress)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(Fill::Idle)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(Fill::Idle),
            Err(e) => Err(e),
        }
    }

    /// Reclaim consumed space (amortized: only when fully drained or the
    /// dead prefix has grown past a threshold).
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Pop one complete frame if buffered. `Err` on an implausible length
    /// prefix (the connection should be dropped).
    pub fn next_frame(&mut self) -> std::io::Result<Option<Bytes>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {MAX_FRAME}"),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = Bytes::copy_from_slice(&avail[4..4 + len]);
        self.start += 4 + len;
        self.compact();
        Ok(Some(body))
    }

    /// Pop one complete frame as a *range into the internal buffer* — the
    /// zero-copy variant of [`FrameReader::next_frame`]. The range stays
    /// valid until the next [`FrameReader::fill`] (the only call that may
    /// compact); a batch loop pops every buffered range, resolves them
    /// through [`FrameReader::view`], and only then fills again. Unlike
    /// `next_frame`, no owned `Bytes` is built, so popping a frame does
    /// not touch the heap.
    // geometa-hot
    pub fn next_frame_range(&mut self) -> std::io::Result<Option<std::ops::Range<usize>>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                // geometa-lint: allow(hot-alloc) error path — an implausible length kills the connection, never steady state
                format!("frame length {len} exceeds cap {MAX_FRAME}"),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let at = self.start + 4;
        self.start += 4 + len;
        Ok(Some(at..at + len))
    }

    /// Resolve a range from [`FrameReader::next_frame_range`] to its bytes.
    // geometa-hot
    pub fn view(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    /// Copy a popped range into an owned `Bytes` — for the frames whose
    /// decoded form must outlive the read buffer (`MetaStr` views into
    /// the message body escape into the registry).
    // geometa-hot
    pub fn materialize(&self, range: std::ops::Range<usize>) -> Bytes {
        // geometa-lint: allow(hot-alloc) escape hatch for messages whose decoded strings outlive the buffer
        Bytes::copy_from_slice(&self.buf[range])
    }

    /// Whether any partial bytes are buffered (a pooled connection must be
    /// clean before reuse).
    pub fn is_clean(&self) -> bool {
        self.start == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Read that yields its script one slice per call, then EOF.
    struct Script {
        parts: Vec<Vec<u8>>,
        at: usize,
    }
    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.parts.len() {
                return Ok(0);
            }
            let part = &self.parts[self.at];
            out[..part.len()].copy_from_slice(part);
            self.at += 1;
            Ok(part.len())
        }
    }

    fn framed(body: &[u8]) -> Vec<u8> {
        let mut v = (body.len() as u32).to_le_bytes().to_vec();
        v.extend_from_slice(body);
        v
    }

    #[test]
    fn frames_survive_arbitrary_fragmentation() {
        let wire: Vec<u8> = [framed(b"hello"), framed(b""), framed(b"world!")].concat();
        // Split the wire at every byte boundary pair.
        for split in 0..wire.len() {
            let mut r = FrameReader::new();
            let mut src = Script {
                parts: vec![wire[..split].to_vec(), wire[split..].to_vec()]
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .collect(),
                at: 0,
            };
            let mut got = Vec::new();
            loop {
                while let Some(f) = r.next_frame().unwrap() {
                    got.push(f);
                }
                match r.fill(&mut src).unwrap() {
                    Fill::Eof => break,
                    _ => continue,
                }
            }
            assert_eq!(got.len(), 3, "split at {split}");
            assert_eq!(&got[0][..], b"hello");
            assert_eq!(&got[1][..], b"");
            assert_eq!(&got[2][..], b"world!");
            assert!(r.is_clean());
        }
    }

    #[test]
    fn oversized_prefix_is_an_error_not_an_allocation() {
        let mut r = FrameReader::new();
        let mut src = Script {
            parts: vec![u32::MAX.to_le_bytes().to_vec()],
            at: 0,
        };
        assert_eq!(r.fill(&mut src).unwrap(), Fill::Progress);
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn mode_framing_matches_concatenation() {
        let mut a = Vec::new();
        write_frame(&mut a, &[7u8, 1, 2, 3]).unwrap();
        let mut b = Vec::new();
        write_frame_with_mode(&mut b, 7, &[1, 2, 3]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_writes_are_refused_in_release_builds_too() {
        let body = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &body).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing reaches the wire");
        // Exactly MAX_FRAME is fine for the plain writer…
        write_frame(&mut sink, &body[..MAX_FRAME]).unwrap();
        // …but the mode byte pushes the same body over the cap.
        let mut sink2 = Vec::new();
        let err = write_frame_with_mode(&mut sink2, 0, &body[..MAX_FRAME]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(sink2.is_empty());
        // A mode-framed body of MAX_FRAME - 1 is the largest that fits,
        // and the reader accepts it back.
        let mut wire = Vec::new();
        write_frame_with_mode(&mut wire, 3, &body[..MAX_FRAME - 1]).unwrap();
        let mut r = FrameReader::new();
        let mut src = Script {
            parts: wire.chunks(16 * 1024).map(|c| c.to_vec()).collect(),
            at: 0,
        };
        loop {
            if let Some(f) = r.next_frame().unwrap() {
                assert_eq!(f.len(), MAX_FRAME);
                assert_eq!(f[0], 3);
                break;
            }
            assert_eq!(r.fill(&mut src).unwrap(), Fill::Progress);
        }
    }

    #[test]
    fn range_frames_match_owned_frames() {
        let wire: Vec<u8> = [framed(b"hello"), framed(b""), framed(b"world!")].concat();
        let mut owned = FrameReader::new();
        let mut ranged = FrameReader::new();
        let mut src_a = Script {
            parts: vec![wire.clone()],
            at: 0,
        };
        let mut src_b = Script {
            parts: vec![wire],
            at: 0,
        };
        owned.fill(&mut src_a).unwrap();
        ranged.fill(&mut src_b).unwrap();
        // Pop every buffered range first — they must all stay valid
        // (and correct) until the next fill.
        let mut ranges = Vec::new();
        while let Some(r) = ranged.next_frame_range().unwrap() {
            ranges.push(r);
        }
        let mut i = 0;
        while let Some(f) = owned.next_frame().unwrap() {
            assert_eq!(&f[..], ranged.view(ranges[i].clone()));
            assert_eq!(&f[..], &ranged.materialize(ranges[i].clone())[..]);
            i += 1;
        }
        assert_eq!(i, ranges.len());
        assert!(ranged.is_clean());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let mut r = FrameReader::new();
        let mut src = Script {
            parts: vec![wire],
            at: 0,
        };
        r.fill(&mut src).unwrap();
        assert_eq!(&r.next_frame().unwrap().unwrap()[..], b"abc");
        assert_eq!(r.next_frame().unwrap().unwrap().len(), 100);
        assert_eq!(r.next_frame().unwrap(), None);
    }
}
