//! # geometa-net — the registry over real TCP sockets
//!
//! The first real network binding of the metadata registry: the same
//! [`ServiceRuntime`](geometa_core::runtime::ServiceRuntime) that powers
//! the threaded channel deployment (`geometa_core::live`), plugged into a
//! framed-TCP [`ConnectionLayer`](geometa_core::runtime::ConnectionLayer).
//! `std::net` only — no external networking crates.
//!
//! * [`frame`] — length-prefixed framing with a timeout-safe incremental
//!   reader and hard frame-size caps on both ends;
//! * [`server`] — [`TcpLayer`]: one readiness-driven reactor thread per
//!   site (nonblocking `std::net` sockets multiplexed through the
//!   vendored `polling` shim), batch-decoding frames and serving them
//!   through `ServiceCore::serve_batch` so runs of reads share shard
//!   locks; a legacy thread-per-connection path remains behind
//!   [`TcpConfig::thread_per_conn`];
//! * [`client`] — [`TcpClientTransport`]: one pipelined connection per
//!   target driven by a single reactor thread, requests correlated by
//!   per-connection sequence ids so many callers share one socket;
//!   retries follow the exactly-once rule (re-send only when the frame
//!   provably never reached the kernel), plus a background cast pump
//!   with write coalescing so lazy pushes never stall on a slow target;
//! * [`loadgen`] — the seeded load generator driving synthetic /
//!   Montage / BuzzFlow op streams (`geometa_workflow::apps::ops`) in
//!   closed-loop and coordinated-omission-safe open-loop modes;
//! * [`chaos`] — [`ChaosLayer`]: seeded frame-aware fault proxies in
//!   front of every site (drops, resets, delays, slow drips, asymmetric
//!   partition windows) — the live analogue of `geometa_sim::faults`.
//!
//! Binaries: `geometa-server` boots an N-site cluster on loopback ports;
//! `geometa-load` drives it (or a self-spawned cluster) in both load
//! modes and writes `BENCH_7.json`.
//!
//! ```
//! use geometa_core::runtime::{RuntimeConfig, ServiceRuntime};
//! use geometa_net::TcpLayer;
//! use geometa_sim::topology::SiteId;
//!
//! let cluster = ServiceRuntime::start(RuntimeConfig::default(), TcpLayer::ephemeral());
//! let client = cluster.client(SiteId(0), 0);
//! client.publish("over-tcp.dat", 4096).unwrap();   // a real socket round trip
//! assert_eq!(client.resolve("over-tcp.dat").unwrap().size, 4096);
//! cluster.shutdown();
//! ```

pub mod chaos;
pub mod cli;
pub mod client;
pub mod frame;
pub mod loadgen;
pub mod server;

pub use chaos::{ChaosConfig, ChaosLayer, ChaosStats, PartitionWindow};
pub use client::{transport_for, TcpClientTransport};
pub use loadgen::{LoadOptions, LoadReport};
pub use server::{TcpConfig, TcpLayer};

/// A loopback topology with `n` sites (for deployments that are not the
/// paper's 4-DC testbed; latencies are the builder's same-region
/// defaults, which only matter to the strategies' plan geometry here —
/// real flight time comes from the actual sockets).
pub fn loopback_topology(n: usize) -> geometa_sim::topology::Topology {
    assert!(n >= 1, "need at least one site");
    if n == 4 {
        return geometa_sim::topology::Topology::azure_4dc();
    }
    let mut b = geometa_sim::topology::Topology::builder();
    for i in 0..n {
        b = b.site(&format!("site-{i}"), geometa_sim::topology::Region(0));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometa_core::protocol::{RegistryRequest, RegistryResponse};
    use geometa_core::runtime::{ConnectionLayer, RuntimeConfig, ServiceRuntime};
    use geometa_core::strategy::StrategyKind;
    use geometa_core::transport::RegistryTransport;
    use geometa_sim::topology::SiteId;
    use std::io::Read;
    use std::net::TcpListener;
    use std::time::{Duration, Instant};

    fn runtime(kind: StrategyKind) -> ServiceRuntime<TcpLayer> {
        ServiceRuntime::start(
            RuntimeConfig {
                kind,
                shards: 8,
                ..RuntimeConfig::default()
            },
            TcpLayer::ephemeral(),
        )
    }

    #[test]
    fn call_roundtrip_over_sockets() {
        let rt = runtime(StrategyKind::Centralized);
        let c = rt.client(SiteId(1), 0);
        for i in 0..25 {
            c.publish(&format!("tcp/{i}"), 10).unwrap();
        }
        let r = rt.client(SiteId(3), 0);
        for i in 0..25 {
            assert_eq!(r.resolve(&format!("tcp/{i}")).unwrap().size, 10);
        }
        rt.shutdown();
    }

    #[test]
    fn lazy_pushes_propagate_over_sockets() {
        let rt = runtime(StrategyKind::DhtLocalReplica);
        let w = rt.client(SiteId(0), 0);
        for i in 0..25 {
            w.publish(&format!("lazy/{i}"), 10).unwrap();
        }
        let remote = rt.client(SiteId(2), 0);
        for i in 0..25 {
            let res = remote.resolve_with_retry(&format!("lazy/{i}"), 400, |_| {
                std::thread::sleep(Duration::from_millis(1))
            });
            assert!(res.is_ok(), "lazy/{i} never arrived over TCP");
        }
        rt.shutdown();
    }

    #[test]
    fn replicated_sync_agent_runs_over_sockets() {
        let rt = runtime(StrategyKind::Replicated);
        let w = rt.client(SiteId(1), 0);
        for i in 0..10 {
            w.publish(&format!("rep/{i}"), 10).unwrap();
        }
        let r = rt.client(SiteId(3), 0);
        for i in 0..10 {
            let res = r.resolve_with_retry(&format!("rep/{i}"), 500, |_| {
                std::thread::sleep(Duration::from_millis(2))
            });
            assert!(res.is_ok(), "rep/{i} never synced over TCP");
        }
        rt.shutdown();
    }

    #[test]
    fn unavailable_after_shutdown_and_unknown_site() {
        let rt = runtime(StrategyKind::Centralized);
        let transport = rt.layer().transport(rt.core(), SiteId(0));
        assert!(matches!(
            transport.call(SiteId(9), RegistryRequest::DeltaPull { since: 0 }),
            RegistryResponse::Error { .. }
        ));
        rt.shutdown();
        assert!(matches!(
            transport.call(SiteId(0), RegistryRequest::DeltaPull { since: 0 }),
            RegistryResponse::Error { .. }
        ));
    }

    /// The satellite regression: a target that accepts but never serves
    /// must not stall the caller's lazy path. `cast` returns in
    /// microseconds while the sink sits on the bytes forever.
    #[test]
    fn slow_target_cannot_stall_the_lazy_path() {
        // A black-hole server: accepts the pump's connection, never reads.
        let sink = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = sink.local_addr().unwrap();
        let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let held = sink.accept().ok();
                let _ = stop_rx.recv_timeout(Duration::from_secs(5));
                drop(held);
            });

            let addrs = std::iter::once((SiteId(0), addr)).collect();
            let transport =
                TcpClientTransport::new(addrs, Duration::from_secs(5), Duration::from_millis(25));
            // Batches big enough that the total (64 × ~120 KB ≈ 8 MB) far
            // exceeds any loopback socket buffer: the pump's *writes* wedge,
            // not just its queue — exercising the write-timeout path.
            let entries: Vec<geometa_core::RegistryEntry> = (0..2000)
                .map(|i| {
                    geometa_core::RegistryEntry::new(
                        format!("lazy/slow/{i}"),
                        1,
                        geometa_core::FileLocation {
                            site: SiteId(0),
                            node: 0,
                        },
                        0,
                    )
                })
                .collect();
            let t0 = Instant::now();
            for _ in 0..64 {
                transport.cast(
                    SiteId(0),
                    RegistryRequest::Absorb {
                        entries: entries.clone(),
                    },
                );
            }
            let enqueue = t0.elapsed();
            assert!(
                enqueue < Duration::from_millis(250),
                "64 casts to a black-hole target took {enqueue:?} — the lazy path stalled"
            );
            // Teardown must be bounded too: the pump discards its backlog on
            // close instead of pushing 8 MB through a peer that never reads.
            let t0 = Instant::now();
            drop(transport);
            let teardown = t0.elapsed();
            assert!(
                teardown < Duration::from_secs(3),
                "dropping the transport blocked {teardown:?} on the wedged target"
            );
            let _ = stop_tx.send(());
        });
    }

    /// Garbage frames get an error response (CALL) or are dropped (CAST);
    /// the connection and the server survive.
    #[test]
    fn malformed_frames_do_not_kill_the_server() {
        let rt = runtime(StrategyKind::Centralized);
        let addr = rt.layer().addrs()[&SiteId(0)];
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        // CALL mode with a garbage body: expect an Error response.
        crate::frame::write_frame(&mut raw, &[super::server::MODE_CALL, 0xFF, 0xFF]).unwrap();
        let mut reader = crate::frame::FrameReader::new();
        let resp = loop {
            if let Some(f) = reader.next_frame().unwrap() {
                break RegistryResponse::decode(f).unwrap();
            }
            let mut chunk = [0u8; 1024];
            let n = raw.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed instead of answering");
            reader_extend(&mut reader, &chunk[..n]);
        };
        assert!(matches!(resp, RegistryResponse::Error { .. }));
        // The same server still serves real traffic.
        let c = rt.client(SiteId(0), 0);
        c.publish("after-garbage", 1).unwrap();
        assert!(c.resolve("after-garbage").is_ok());
        rt.shutdown();
    }

    // Feed raw bytes into a FrameReader via its Read-based fill.
    fn reader_extend(reader: &mut crate::frame::FrameReader, mut bytes: &[u8]) {
        let _ = reader.fill(&mut bytes);
    }
}
