//! `geometa-server` — boot an N-site registry cluster on loopback TCP.
//!
//! ```text
//! geometa-server [--sites 4] [--base-port 7420] [--strategy dht-local-replica]
//!                [--shards 16] [--duration SECS]
//!                [--data-dir PATH] [--fsync always|group|off] [--recover]
//! ```
//!
//! Prints one `LISTEN site=<i> addr=<ip:port>` line per site and then
//! `READY`. Runs until stdin closes (so a parent process owns the
//! lifetime) or, with `--duration`, for a fixed wall-clock window.
//! `--base-port 0` picks ephemeral ports (the printed addresses are the
//! source of truth either way).
//!
//! With `--data-dir` every site keeps a file-backed write-ahead log under
//! `PATH/site-<i>/`; a restart replays snapshot + clean log tail before
//! the sockets open, printing one `RECOVERED site=<i> ...` line per site
//! that had state. `--recover` additionally *requires* existing state —
//! booting against an empty data dir becomes an error instead of a
//! silent cold start. `--fsync` picks the durability/latency trade-off
//! (default `group`: one fsync amortizes every append inside a short
//! flush window; acked ⇒ durable still holds).

use geometa_core::runtime::{RuntimeConfig, ServiceRuntime, WalConfig};
use geometa_core::strategy::StrategyKind;
use geometa_core::wal::{FsyncPolicy, WalError};
use geometa_net::cli::{die, flag_value, has_flag, parse_or_die, strategy_flag};
use geometa_net::{loopback_topology, TcpConfig, TcpLayer};
use std::io::Read;
use std::path::PathBuf;
use std::time::Duration;

/// Default group-commit flush interval for `--fsync group`.
const GROUP_COMMIT_INTERVAL: Duration = Duration::from_millis(2);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sites: usize = flag_value(&args, "--sites")
        .map(|v| parse_or_die(&v, "--sites takes a positive integer"))
        .unwrap_or(4);
    let base_port: u16 = flag_value(&args, "--base-port")
        .map(|v| parse_or_die(&v, "--base-port takes a port number"))
        .unwrap_or(7420);
    let strategy = strategy_flag(&args, StrategyKind::DhtLocalReplica);
    let shards: usize = flag_value(&args, "--shards")
        .map(|v| parse_or_die(&v, "--shards takes a positive integer"))
        .unwrap_or(16);
    let duration = flag_value(&args, "--duration")
        .map(|v| Duration::from_secs_f64(parse_or_die(&v, "--duration takes seconds")));
    let data_dir = flag_value(&args, "--data-dir").map(PathBuf::from);
    let recover = has_flag(&args, "--recover");
    let fsync = match flag_value(&args, "--fsync") {
        None => FsyncPolicy::GroupCommit(GROUP_COMMIT_INTERVAL),
        Some(v) => FsyncPolicy::parse(&v, GROUP_COMMIT_INTERVAL).unwrap_or_else(|| {
            die(&format!(
                "--fsync: expected always, group or off, got '{v}'"
            ))
        }),
    };
    if recover && data_dir.is_none() {
        die("--recover requires --data-dir");
    }

    let wal = match &data_dir {
        Some(dir) => WalConfig::File {
            data_dir: dir.clone(),
            fsync,
        },
        None => WalConfig::Memory,
    };
    let runtime = ServiceRuntime::try_start(
        RuntimeConfig {
            topology: loopback_topology(sites),
            kind: strategy,
            shards,
            sync_interval: Duration::from_millis(5),
            wal,
            ..RuntimeConfig::default()
        },
        TcpLayer::new(TcpConfig {
            base_port,
            ..TcpConfig::default()
        }),
    )
    .unwrap_or_else(|e| die(&format!("wal: {e}")));

    // `--recover` promises the operator existing state: a cold start
    // against an empty data dir is a mistake (wrong path, wiped volume),
    // not a fresh deployment.
    if let Some(dir) = &data_dir {
        if recover && runtime.core().recovery_reports().is_empty() {
            let dir = dir.clone();
            runtime.shutdown();
            die(&format!(
                "--recover: {}",
                WalError::NothingToRecover { dir }
            ));
        }
    }
    for r in runtime.core().recovery_reports() {
        println!(
            "RECOVERED site={} snapshot_entries={} replayed={} torn={}",
            r.site.0,
            r.snapshot_entries,
            r.replayed,
            r.torn
                .as_ref()
                .map_or("none".to_string(), |t| format!("@{}", t.offset)),
        );
    }

    let mut addrs: Vec<_> = runtime.layer().addrs().iter().collect();
    addrs.sort_by_key(|(site, _)| **site);
    for (site, addr) in addrs {
        println!("LISTEN site={} addr={addr}", site.0);
    }
    println!("READY strategy={} sites={sites}", strategy.label());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    match duration {
        Some(d) => std::thread::sleep(d),
        None => {
            // Parent owns our lifetime: run until stdin closes.
            let mut sink = [0u8; 1024];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    let joined = runtime.shutdown();
    println!("STOPPED joined_threads={joined}");
}
