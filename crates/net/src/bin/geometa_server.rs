//! `geometa-server` — boot an N-site registry cluster on loopback TCP.
//!
//! ```text
//! geometa-server [--sites 4] [--base-port 7420] [--strategy dht-local-replica]
//!                [--shards 16] [--duration SECS]
//! ```
//!
//! Prints one `LISTEN site=<i> addr=<ip:port>` line per site and then
//! `READY`. Runs until stdin closes (so a parent process owns the
//! lifetime) or, with `--duration`, for a fixed wall-clock window.
//! `--base-port 0` picks ephemeral ports (the printed addresses are the
//! source of truth either way).

use geometa_core::runtime::{RuntimeConfig, ServiceRuntime};
use geometa_core::strategy::StrategyKind;
use geometa_net::cli::{flag_value, parse_or_die, strategy_flag};
use geometa_net::{loopback_topology, TcpConfig, TcpLayer};
use std::io::Read;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sites: usize = flag_value(&args, "--sites")
        .map(|v| parse_or_die(&v, "--sites takes a positive integer"))
        .unwrap_or(4);
    let base_port: u16 = flag_value(&args, "--base-port")
        .map(|v| parse_or_die(&v, "--base-port takes a port number"))
        .unwrap_or(7420);
    let strategy = strategy_flag(&args, StrategyKind::DhtLocalReplica);
    let shards: usize = flag_value(&args, "--shards")
        .map(|v| parse_or_die(&v, "--shards takes a positive integer"))
        .unwrap_or(16);
    let duration = flag_value(&args, "--duration")
        .map(|v| Duration::from_secs_f64(parse_or_die(&v, "--duration takes seconds")));

    let runtime = ServiceRuntime::start(
        RuntimeConfig {
            topology: loopback_topology(sites),
            kind: strategy,
            shards,
            sync_interval: Duration::from_millis(5),
        },
        TcpLayer::new(TcpConfig {
            base_port,
            ..TcpConfig::default()
        }),
    );

    let mut addrs: Vec<_> = runtime.layer().addrs().iter().collect();
    addrs.sort_by_key(|(site, _)| **site);
    for (site, addr) in addrs {
        println!("LISTEN site={} addr={addr}", site.0);
    }
    println!("READY strategy={} sites={sites}", strategy.label());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    match duration {
        Some(d) => std::thread::sleep(d),
        None => {
            // Parent owns our lifetime: run until stdin closes.
            let mut sink = [0u8; 1024];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    let joined = runtime.shutdown();
    println!("STOPPED joined_threads={joined}");
}
