//! `geometa-load` — seeded load generator for a TCP registry cluster,
//! closed-loop and open-loop, swept across reactor-pool sizes.
//!
//! ```text
//! geometa-load [--quick] [--connect ip:port,ip:port,...] [--sites 4]
//!              [--strategy dht-local-replica] [--workload all|synthetic|montage|buzzflow]
//!              [--mode both|closed|open] [--rate OPS_PER_SEC]
//!              [--threads 32] [--ops 200] [--seed 61444] [--reactors N]
//!              [--out BENCH_8.json] [--baseline BENCH_7.json]
//! ```
//!
//! Without `--connect`, spawns its own 4-site cluster on ephemeral
//! loopback ports (still real sockets) — **twice**: once with a single
//! reactor thread per site and once with the full reactor pool
//! (`--reactors`, default `TcpConfig` auto but at least 2), so the
//! snapshot records a per-core scaling curve. The CI `net-smoke` path
//! uses an external `geometa-server` instead, which serves with its own
//! pool (one `"external"` block). Workers replay the synthetic and
//! Montage/BuzzFlow op streams (`geometa_workflow::apps::ops`) in the
//! requested mode(s): closed loop (next op only after the previous
//! completed — sustained-capacity throughput) and open loop (fixed
//! arrival rate, latency from each op's *scheduled* issue time —
//! coordinated-omission-safe percentiles). With `--mode both` and no
//! `--rate`, the open-loop rate defaults to 80% of the just-measured
//! closed-loop throughput, i.e. the service observed near but below
//! saturation. Each stream warms its connections with untimed resolves
//! before the clock starts, so `max_us` reports a service latency, not
//! a TCP connect. Results land in `BENCH_8.json`, embedding
//! `--baseline` (the committed BENCH_7 snapshot) for review-time
//! comparison.

use geometa_core::controller::ArchitectureController;
use geometa_core::runtime::{RuntimeConfig, ServiceRuntime};
use geometa_core::strategy::StrategyKind;
use geometa_core::{ClientConfig, StrategyClient};
use geometa_net::cli::{die, flag_value, parse_or_die, strategy_flag};
use geometa_net::loadgen::{run_stream, LoadMode, LoadOptions, LoadReport};
use geometa_net::{loopback_topology, transport_for, TcpClientTransport, TcpConfig, TcpLayer};
use geometa_sim::time::SimDuration;
use geometa_sim::topology::SiteId;
use geometa_workflow::apps::buzzflow::buzzflow_with_total_ops;
use geometa_workflow::apps::montage::montage_with_total_ops;
use geometa_workflow::apps::ops::{synthetic_streams, workflow_streams, OpStream};
use geometa_workflow::apps::synthetic::SyntheticSpec;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

struct WorkloadResult {
    name: &'static str,
    /// One report per mode that ran (closed first when both).
    reports: Vec<LoadReport>,
}

/// One cluster configuration's sweep: its JSON label ("reactors_1",
/// "reactors_4", or "external") and every workload's reports under it.
struct SweepBlock {
    label: String,
    results: Vec<WorkloadResult>,
}

/// Fraction of measured closed-loop throughput used as the default
/// open-loop arrival rate under `--mode both`: near saturation, but with
/// enough headroom that the open loop measures queueing under load
/// rather than unbounded backlog growth.
const DEFAULT_OPEN_RATE_FRACTION: f64 = 0.8;

/// Untimed per-stream warmup resolves before each measured run (dials
/// connections, fills the call-slot slab and scratch buffers).
const WARMUP_OPS: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let strategy = strategy_flag(&args, StrategyKind::DhtLocalReplica);
    let workload = flag_value(&args, "--workload").unwrap_or_else(|| "all".into());
    let nodes: usize = flag_value(&args, "--threads")
        .map(|v| parse_or_die(&v, "--threads takes a positive integer"))
        .or_else(|| {
            // Back-compat alias: a node stream is exactly one worker
            // thread, so the old spelling still works.
            flag_value(&args, "--nodes")
                .map(|v| parse_or_die(&v, "--nodes takes a positive integer"))
        })
        .unwrap_or(32);
    let ops_per_node: usize = flag_value(&args, "--ops")
        .map(|v| parse_or_die(&v, "--ops takes a positive integer"))
        .unwrap_or(if quick { 40 } else { 200 });
    let seed: u64 = flag_value(&args, "--seed")
        .map(|v| parse_or_die(&v, "--seed takes an integer"))
        .unwrap_or(0xF004);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_8.json".into());
    let baseline_path = flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_7.json".into());
    let mode = flag_value(&args, "--mode").unwrap_or_else(|| "both".into());
    if !matches!(mode.as_str(), "both" | "closed" | "open") {
        die("--mode takes both|closed|open");
    }
    let rate: Option<f64> = flag_value(&args, "--rate")
        .map(|v| parse_or_die(&v, "--rate takes an arrival rate in ops/s"));
    if mode == "open" && rate.is_none() {
        die("--mode open needs an explicit --rate (with --mode both it derives from the closed-loop run)");
    }
    let connect = flag_value(&args, "--connect");
    let n_sites: usize = flag_value(&args, "--sites")
        .map(|v| parse_or_die(&v, "--sites takes a positive integer"))
        .unwrap_or(4);
    let reactors_flag: Option<usize> = flag_value(&args, "--reactors")
        .map(|v| parse_or_die(&v, "--reactors takes a positive integer"));

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The sweep: 1 reactor and the full pool for spawned clusters (the
    // scaling curve the snapshot exists to record — run even on a 1-core
    // host, where "more reactors" honestly buys nothing); one opaque
    // block for an external cluster whose pool we don't control.
    let sweep: Vec<(String, Option<usize>)> = match &connect {
        Some(_) => vec![("external".into(), None)],
        None => {
            let n =
                reactors_flag.unwrap_or_else(|| TcpConfig::default().resolved_reactors().max(2));
            if n <= 1 {
                vec![("reactors_1".into(), Some(1))]
            } else {
                vec![
                    ("reactors_1".into(), Some(1)),
                    (format!("reactors_{n}"), Some(n)),
                ]
            }
        }
    };

    eprintln!(
        "geometa-load: strategy {}, workload {workload}, quick={quick}, {host_cores} host cores, {} threads",
        strategy.label(),
        nodes,
    );

    let mut blocks: Vec<SweepBlock> = Vec::new();
    for (label, pool) in &sweep {
        // The cluster: external (--connect) or self-spawned on ephemeral
        // ports with this block's reactor pool.
        let mut spawned: Option<ServiceRuntime<TcpLayer>> = None;
        let addrs: Vec<SocketAddr> = match &connect {
            Some(list) => list
                .split(',')
                .map(|a| {
                    a.parse()
                        .unwrap_or_else(|e| die(&format!("--connect: bad address '{a}': {e}")))
                })
                .collect(),
            None => {
                let rt = ServiceRuntime::start(
                    RuntimeConfig {
                        topology: loopback_topology(n_sites),
                        kind: strategy,
                        shards: 16,
                        sync_interval: Duration::from_millis(5),
                        ..RuntimeConfig::default()
                    },
                    TcpLayer::new(TcpConfig {
                        reactors: pool.unwrap_or(0),
                        ..TcpConfig::default()
                    }),
                );
                let mut pairs: Vec<_> = rt.layer().addrs().iter().map(|(s, a)| (*s, *a)).collect();
                pairs.sort_by_key(|(s, _)| *s);
                let addrs = pairs.into_iter().map(|(_, a)| a).collect();
                spawned = Some(rt);
                addrs
            }
        };
        let sites: Vec<SiteId> = (0..addrs.len() as u16).map(SiteId).collect();
        eprintln!(
            "[{label}] {} sites ({})",
            sites.len(),
            if connect.is_some() {
                "external"
            } else {
                "spawned"
            },
        );

        // One shared pipelining transport + client-side controller per
        // block; every worker thread gets its own StrategyClient view.
        let transport = transport_for(&addrs, Duration::from_secs(10));
        let controller = Arc::new(ArchitectureController::with_kind(strategy, sites.clone()));
        let make_client = |site: SiteId, node: u32| -> StrategyClient<TcpClientTransport> {
            StrategyClient::new(
                Arc::clone(&transport),
                Arc::clone(&controller),
                ClientConfig { site, node },
            )
        };

        let run_mode = |name: &'static str, stream: &OpStream, load_mode: LoadMode| -> LoadReport {
            let opts = LoadOptions {
                mode: load_mode,
                // Per-(workload, mode, block) namespace: without it, the
                // open-loop pass of `--mode both` replays names the
                // closed-loop pass already published, every resolve hits
                // the pre-propagated entry, and `resolve_retries` is
                // identically 0 (and external-cluster sweep blocks would
                // collide with each other the same way).
                key_namespace: format!("{name}/{}/{label}#", load_mode.label()),
                warmup_ops: WARMUP_OPS,
                ..LoadOptions::default()
            };
            let report = run_stream(make_client, stream, &opts)
                .unwrap_or_else(|e| panic!("workload {name} ({}) failed: {e}", load_mode.label()));
            eprintln!(
                "  {name:<10} {:<6} {:>8} ops  {:>10.0} ops/s  p50 {:>7.1}us  p90 {:>7.1}us  p99 {:>7.1}us  max {:>8.1}us  ({} retries)",
                report.mode.label(), report.total_ops, report.throughput, report.p50_us, report.p90_us, report.p99_us, report.max_us, report.retries
            );
            report
        };
        let run = |name: &'static str, stream: &OpStream| -> WorkloadResult {
            let mut reports = Vec::new();
            if mode != "open" {
                reports.push(run_mode(name, stream, LoadMode::Closed));
            }
            if mode != "closed" {
                let open_rate = rate.unwrap_or_else(|| {
                    // `both` without --rate: pace the open loop just under
                    // the saturation point the closed loop measured.
                    let closed = reports.first().map(|r| r.throughput).unwrap_or(0.0);
                    (closed * DEFAULT_OPEN_RATE_FRACTION).max(1.0)
                });
                reports.push(run_mode(name, stream, LoadMode::Open { rate: open_rate }));
            }
            WorkloadResult { name, reports }
        };

        let mut results: Vec<WorkloadResult> = Vec::new();
        if workload == "all" || workload == "synthetic" {
            let spec = SyntheticSpec {
                nodes,
                ops_per_node,
                compute_per_op: SimDuration::ZERO,
                seed,
            };
            let stream = synthetic_streams(&spec, &sites);
            results.push(run("synthetic", &stream));
        }
        if workload == "all" || workload == "montage" {
            let target = if quick { 2_000 } else { 16_000 };
            let w = montage_with_total_ops(target, 32, SimDuration::ZERO);
            let grid = node_grid_for(&sites, nodes);
            let placement = geometa_workflow::scheduler::schedule(
                &w,
                &grid,
                geometa_workflow::scheduler::SchedulerPolicy::LocalityAware,
            );
            let stream = workflow_streams(&w, &placement);
            results.push(run("montage", &stream));
        }
        if workload == "all" || workload == "buzzflow" {
            let target = if quick { 1_500 } else { 7_200 };
            let w = buzzflow_with_total_ops(target, 6, 8, SimDuration::ZERO);
            let grid = node_grid_for(&sites, nodes);
            let placement = geometa_workflow::scheduler::schedule(
                &w,
                &grid,
                geometa_workflow::scheduler::SchedulerPolicy::LocalityAware,
            );
            let stream = workflow_streams(&w, &placement);
            results.push(run("buzzflow", &stream));
        }
        assert!(!results.is_empty(), "unknown --workload '{workload}'");

        drop(transport);
        if let Some(rt) = spawned {
            let joined = rt.shutdown();
            eprintln!("[{label}] cluster shut down ({joined} threads joined)");
        }
        blocks.push(SweepBlock {
            label: label.clone(),
            results,
        });
    }

    if out != "none" {
        let baseline = std::fs::read_to_string(&baseline_path)
            .ok()
            .filter(|b| !b.trim().is_empty());
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"schema\": \"geometa-net-load/3\",\n  \"quick\": {quick},\n  \
             \"strategy\": \"{}\",\n  \"sites\": {},\n  \"transport\": \"tcp-loopback\",\n  \
             \"conn_model\": \"reactor-pool\",\n  \"host_cores\": {host_cores},\n  \
             \"threads\": {nodes},\n  \"warmup_ops\": {WARMUP_OPS},\n  \"runs\": {{\n",
            strategy.label(),
            n_sites,
        ));
        for (bi, block) in blocks.iter().enumerate() {
            let block_comma = if bi + 1 == blocks.len() { "" } else { "," };
            json.push_str(&format!("    \"{}\": {{\n", block.label));
            for (i, r) in block.results.iter().enumerate() {
                let comma = if i + 1 == block.results.len() {
                    ""
                } else {
                    ","
                };
                json.push_str(&format!("      \"{}\": {{\n", r.name));
                for (j, rep) in r.reports.iter().enumerate() {
                    let inner_comma = if j + 1 == r.reports.len() { "" } else { "," };
                    let rate_field = rep
                        .mode
                        .target_rate()
                        .map(|r| format!("\"target_rate_ops_per_sec\": {r:.0}, "))
                        .unwrap_or_default();
                    json.push_str(&format!(
                        "        \"{}\": {{{}\"total_ops\": {}, \"wall_secs\": {:.3}, \
                         \"throughput_ops_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \
                         \"p99_us\": {:.1}, \"max_us\": {:.1}, \"resolve_retries\": {}}}{}\n",
                        rep.mode.label(),
                        rate_field,
                        rep.total_ops,
                        rep.wall.as_secs_f64(),
                        rep.throughput,
                        rep.p50_us,
                        rep.p90_us,
                        rep.p99_us,
                        rep.max_us,
                        rep.retries,
                        inner_comma
                    ));
                }
                json.push_str(&format!("      }}{comma}\n"));
            }
            json.push_str(&format!("    }}{block_comma}\n"));
        }
        json.push_str("  }");
        if let Some(base) = baseline {
            json.push_str(",\n  \"baseline\": ");
            json.push_str(base.trim_end());
            json.push('\n');
        } else {
            json.push('\n');
        }
        json.push_str("}\n");
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        eprintln!("wrote {out}");
    }
}

/// The workflow node grid: `threads` workers spread evenly over sites.
fn node_grid_for(sites: &[SiteId], threads: usize) -> Vec<geometa_workflow::scheduler::NodeId> {
    geometa_workflow::scheduler::node_grid(sites, (threads / sites.len()).max(1) as u32)
}
