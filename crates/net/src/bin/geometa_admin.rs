//! `geometa-admin` — operations CLI for a running TCP registry cluster.
//!
//! ```text
//! geometa-admin status --connect ip:port,ip:port,...
//! geometa-admin join   --connect ... --site N [--wait-secs 30]
//! geometa-admin leave  --connect ... --site N [--wait-secs 30]
//! geometa-admin drain  --connect ... --site N [--wait-secs 30]
//! ```
//!
//! `status` probes every address with a breaker-exempt `Status` call and
//! prints one line per site: membership epoch, member set, WAL high
//! sequence, entry count, open connections, and whether a rebalance is
//! in flight. `join`/`leave`/`drain` submit the membership change to the
//! first reachable site (`Ack` means *accepted* — the transfer runs in
//! the background) and then poll `Status` until the change lands: an
//! epoch flip with the right member set for join/leave, `rebalancing:
//! false` for drain (drain copies ahead without flipping the epoch).
//!
//! Exit codes: 0 done, 1 the cluster refused or the wait timed out,
//! 2 usage error.

use geometa_core::protocol::{ReconfigureOp, RegistryRequest, RegistryResponse, SiteStatus};
use geometa_core::transport::RegistryTransport;
use geometa_net::cli::{die, flag_value, parse_or_die};
use geometa_net::transport_for;
use geometa_sim::topology::SiteId;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Per-call deadline: admin probes must fail fast on a dark site.
const CALL_TIMEOUT: Duration = Duration::from_secs(3);
/// Poll cadence while waiting for a membership change to land.
const POLL_TICK: Duration = Duration::from_millis(100);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        die("usage: geometa-admin <status|join|leave|drain> --connect ip:port,... [--site N] [--wait-secs 30]");
    };
    let addrs: Vec<SocketAddr> = flag_value(&args, "--connect")
        .unwrap_or_else(|| die("--connect ip:port,ip:port,... is required"))
        .split(',')
        .map(|a| {
            a.parse()
                .unwrap_or_else(|e| die(&format!("--connect: bad address '{a}': {e}")))
        })
        .collect();
    let transport = transport_for(&addrs, CALL_TIMEOUT);

    match cmd {
        "status" => {
            let mut up = 0usize;
            for site in transport.sites() {
                match transport.call(site, RegistryRequest::Status) {
                    RegistryResponse::Status { status } => {
                        up += 1;
                        print_status(&status);
                    }
                    other => println!("site {:>3}: unreachable ({other:?})", site.0),
                }
            }
            std::process::exit(if up > 0 { 0 } else { 1 });
        }
        "join" | "leave" | "drain" => {
            let op = match cmd {
                "join" => ReconfigureOp::Join,
                "leave" => ReconfigureOp::Leave,
                _ => ReconfigureOp::Drain,
            };
            let target: u16 = flag_value(&args, "--site")
                .map(|v| parse_or_die(&v, "--site takes a site id"))
                .unwrap_or_else(|| die(&format!("{cmd} needs --site N")));
            let wait_secs: u64 = flag_value(&args, "--wait-secs")
                .map(|v| parse_or_die(&v, "--wait-secs takes seconds"))
                .unwrap_or(30);
            let target = SiteId(target);

            // Submit to the first member that accepts. A site that is
            // down or already mid-rebalance refuses; try the next.
            let mut accepted_by = None;
            let mut last_refusal = None;
            for site in transport.sites() {
                match transport.call(site, RegistryRequest::Reconfigure { op, site: target }) {
                    RegistryResponse::Ack => {
                        accepted_by = Some(site);
                        break;
                    }
                    RegistryResponse::Error { error } => last_refusal = Some(error),
                    _ => {}
                }
            }
            let Some(via) = accepted_by else {
                eprintln!(
                    "error: no site accepted {cmd} of site {} (last refusal: {:?})",
                    target.0, last_refusal
                );
                std::process::exit(1);
            };
            eprintln!("{cmd} of site {} accepted by site {}", target.0, via.0);

            // Poll until the change lands (or the wait budget runs out).
            let deadline = Instant::now() + Duration::from_secs(wait_secs);
            while Instant::now() < deadline {
                if let Some(status) = first_status(&*transport) {
                    let member = status.members.contains(&target);
                    let done = match op {
                        ReconfigureOp::Join => member && !status.rebalancing,
                        ReconfigureOp::Leave => !member && !status.rebalancing,
                        ReconfigureOp::Drain => !status.rebalancing,
                    };
                    if done {
                        println!(
                            "{cmd} of site {} complete: epoch {}, members [{}], moved {}",
                            target.0,
                            status.epoch,
                            fmt_members(&status.members),
                            status.last_moved
                        );
                        std::process::exit(0);
                    }
                }
                std::thread::sleep(POLL_TICK);
            }
            eprintln!(
                "error: {cmd} of site {} did not land within {wait_secs}s",
                target.0
            );
            std::process::exit(1);
        }
        other => die(&format!(
            "unknown command '{other}' (expected status, join, leave or drain)"
        )),
    }
}

/// The first reachable site's status snapshot.
fn first_status(transport: &dyn RegistryTransport) -> Option<SiteStatus> {
    for site in transport.sites() {
        if let RegistryResponse::Status { status } = transport.call(site, RegistryRequest::Status) {
            return Some(status);
        }
    }
    None
}

fn fmt_members(members: &[SiteId]) -> String {
    members
        .iter()
        .map(|s| s.0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn print_status(s: &SiteStatus) {
    println!(
        "site {:>3}: epoch {:<4} members [{}]  wal_seq {:<8} entries {:<8} conns {:<4} {}",
        s.site.0,
        s.epoch,
        fmt_members(&s.members),
        s.wal_seq,
        s.entries,
        s.conns,
        if s.rebalancing {
            "REBALANCING"
        } else {
            "steady"
        }
    );
}
