//! Elastic membership on a **live TCP cluster**, byte-audited: the
//! bounded-movement guarantee the core proves in-process
//! (`geometa_core::runtime` elasticity tests) must also hold when the
//! join runs over real sockets — and the audit here does not trust the
//! server's own counters. It decodes every site's write-ahead log with
//! the production WAL decoder and counts, record by record, which
//! pre-join keys were absorbed where after the join started.
//!
//! Also exercised on the way: `MODE_CALL_EPOCH` rejection of the stale
//! client plan (the shared transport still stamps epoch 0 after the
//! flip; its first read takes a `WrongEpoch`, refreshes, retries), and
//! the `Status` poll loop an operator would run.

use geometa_core::protocol::{ReconfigureOp, RegistryRequest, RegistryResponse};
use geometa_core::runtime::{ConnectionLayer, RuntimeConfig, ServiceRuntime, WalConfig};
use geometa_core::strategy::StrategyKind;
use geometa_core::transport::RegistryTransport;
use geometa_core::wal::{read_log_file, FsyncPolicy, LOG_FILE};
use geometa_net::{loopback_topology, TcpLayer};
use geometa_sim::topology::SiteId;
use std::collections::BTreeSet;
use std::path::Path;
use std::time::{Duration, Instant};

const KEYS: usize = 600;
/// Movement ceiling for a 3 → 4 member join: the ideal consistent-ring
/// transfer is ~1/4 of the keys; 0.45 allows vnode imbalance while
/// still damning any rehash-everything regression (~3/4 would move).
const MOVE_FRAC_CEILING: f64 = 0.45;

/// Keys absorbed at `site` according to its on-disk WAL, restricted to
/// `universe` (the pre-join keys — rebalance traffic, not new writes).
fn absorbed_keys(data_dir: &Path, site: u16, universe: &BTreeSet<String>) -> BTreeSet<String> {
    let path = data_dir.join(format!("site-{site}")).join(LOG_FILE);
    let (records, torn) = read_log_file(&path).unwrap_or_else(|e| panic!("decode {path:?}: {e}"));
    assert!(torn.is_none(), "site {site}: fsync=always left a torn tail");
    let mut keys = BTreeSet::new();
    for r in records {
        if let RegistryRequest::Absorb { entries } = &r.req {
            for e in entries {
                let name = e.name.as_str().to_owned();
                if universe.contains(&name) {
                    keys.insert(name);
                }
            }
        }
    }
    keys
}

/// Total WAL records at `site` (the "nothing new landed here" probe).
fn wal_records(data_dir: &Path, site: u16) -> usize {
    let path = data_dir.join(format!("site-{site}")).join(LOG_FILE);
    read_log_file(&path).map_or(0, |(records, _)| records.len())
}

#[test]
fn tcp_join_movement_is_bounded_and_wal_audited() {
    let data_dir = std::env::temp_dir().join(format!("geometa-elastic-net-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).expect("create data dir");

    // 4-site topology, 3 initial members; site 3 serves but owns nothing.
    let rt = ServiceRuntime::start(
        RuntimeConfig {
            topology: loopback_topology(4),
            kind: StrategyKind::DhtNonReplicated,
            members: Some((0..3).map(SiteId).collect()),
            wal: WalConfig::File {
                data_dir: data_dir.clone(),
                fsync: FsyncPolicy::Always,
            },
            rebalance_throttle: Duration::ZERO,
            ..RuntimeConfig::default()
        },
        TcpLayer::ephemeral(),
    );

    // Publish the pre-join universe over real sockets.
    let mut universe = BTreeSet::new();
    for i in 0..KEYS {
        let client = rt.client(SiteId((i % 3) as u16), 0);
        let key = format!("elastic-net-{i}");
        client.publish(&key, 64 + i as u64).expect("publish");
        universe.insert(key);
    }
    let pre_join_records: Vec<usize> = (0..4).map(|s| wal_records(&data_dir, s)).collect();
    assert_eq!(
        pre_join_records[3], 0,
        "the non-member site must hold nothing before the join"
    );

    // Join site 3 through the wire, exactly as geometa-admin would.
    let transport = rt.layer().transport(rt.core(), SiteId(0));
    match transport.call(
        SiteId(0),
        RegistryRequest::Reconfigure {
            op: ReconfigureOp::Join,
            site: SiteId(3),
        },
    ) {
        RegistryResponse::Ack => {}
        other => panic!("join refused: {other:?}"),
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "join never settled");
        if let RegistryResponse::Status { status } =
            transport.call(SiteId(0), RegistryRequest::Status)
        {
            if status.epoch == 1 && !status.rebalancing && status.members.len() == 4 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Byte audit: decode the WALs. The joiner absorbed a bounded slice;
    // the old members took no rebalance traffic at all.
    let moved = absorbed_keys(&data_dir, 3, &universe);
    let frac = moved.len() as f64 / KEYS as f64;
    assert!(
        !moved.is_empty(),
        "join moved nothing — the transfer did not run"
    );
    assert!(
        frac < MOVE_FRAC_CEILING,
        "join moved {} of {KEYS} keys ({frac:.3}) — movement is not bounded",
        moved.len()
    );
    for site in 0..3u16 {
        assert_eq!(
            wal_records(&data_dir, site),
            pre_join_records[site as usize],
            "site {site} must take no writes from a join it only donates to"
        );
    }

    // Zero acked writes lost, read back over the same wire. The shared
    // transport still carries epoch 0, so this sweep also crosses the
    // WrongEpoch → refresh → retry path.
    for key in &universe {
        rt.client(SiteId(0), 0)
            .resolve(key)
            .unwrap_or_else(|e| panic!("'{key}' lost across the join: {e}"));
    }
    rt.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
