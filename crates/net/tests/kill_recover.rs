//! Physical kill-and-recover: a real `geometa-server` process takes
//! acked writes over TCP, dies by SIGKILL (no flush, no goodbye), and a
//! restart with `--recover` must bring every one of those writes back —
//! verified twice, independently:
//!
//! 1. **against the disk** — between the kill and the restart, the
//!    on-disk snapshot + log tail of every site are decoded directly
//!    (`geometa_core::wal::{read_snapshot_file, read_log_file}`) and
//!    must already contain every acked key;
//! 2. **against the reborn cluster** — after `--recover` replays, every
//!    acked key must resolve over the wire *from the site that wrote
//!    it*. (That is exactly the durability contract: the sync target
//!    that acked holds the entry again. The dht-local-replica strategy's
//!    lazy owner-copy is a best-effort cast and may die with the
//!    process — by design, so a probe from an unrelated site is not
//!    guaranteed, same as the DES oracle's surviving-instance check.)
//!
//! The matrix covers two strategies × four seeds (the acceptance floor
//! for this tier). `--fsync always` keeps acked ⇒ on-disk unconditional
//! so the SIGKILL timing cannot make the test flaky; the group-commit
//! window's durability/latency trade is exercised by the WAL unit tests
//! and the bench, not here.
//!
//! Set `GEOMETA_KILL_RECOVER_DIR` to pin the data-dir root to a known
//! path (CI uses this to upload the post-recovery logs as an artifact
//! when the test fails); by default a per-process temp dir is used and
//! removed on success.

use geometa_core::controller::ArchitectureController;
use geometa_core::protocol::RegistryRequest;
use geometa_core::strategy::StrategyKind;
use geometa_core::transport::RegistryTransport;
use geometa_core::wal::{read_log_file, read_snapshot_file, LOG_FILE, SNAPSHOT_FILE};
use geometa_core::{ClientConfig, StrategyClient};
use geometa_net::transport_for;
use geometa_sim::topology::SiteId;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const SITES: usize = 4;
const WRITES_PER_CELL: usize = 24;
const CALL_TIMEOUT: Duration = Duration::from_secs(10);

/// A booted server process plus the addresses it printed. The stdout
/// reader stays alive for the process lifetime — dropping the pipe
/// would make the server's own shutdown banner fail on a closed fd.
struct Cluster {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addrs: Vec<SocketAddr>,
    recovered_lines: usize,
}

/// Spawn `geometa-server`, wait for `READY`, collect `LISTEN` addresses
/// and count `RECOVERED` banners.
fn boot(strategy: &str, data_dir: &Path, recover: bool) -> Cluster {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_geometa-server"));
    cmd.arg("--sites")
        .arg(SITES.to_string())
        .arg("--base-port")
        .arg("0")
        .arg("--strategy")
        .arg(strategy)
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--fsync")
        .arg("always")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    if recover {
        cmd.arg("--recover");
    }
    let mut child = cmd.spawn().expect("spawn geometa-server");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut addrs: Vec<(u16, SocketAddr)> = Vec::new();
    let mut recovered_lines = 0;
    loop {
        let mut line = String::new();
        assert!(
            stdout.read_line(&mut line).expect("server stdout") > 0,
            "server exited before READY"
        );
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("LISTEN site=") {
            let (site, addr) = rest.split_once(" addr=").expect("LISTEN line shape");
            addrs.push((
                site.parse().expect("site id"),
                addr.parse().expect("socket addr"),
            ));
        } else if line.starts_with("RECOVERED site=") {
            recovered_lines += 1;
        } else if line.starts_with("READY") {
            break;
        }
    }
    assert_eq!(addrs.len(), SITES, "one LISTEN line per site");
    addrs.sort_by_key(|(site, _)| *site);
    Cluster {
        child,
        stdout,
        addrs: addrs.into_iter().map(|(_, a)| a).collect(),
        recovered_lines,
    }
}

/// Every entry name recoverable from the on-disk state of every site:
/// the union of each site's snapshot entries and the Put/Absorb records
/// in its clean log tail.
fn keys_on_disk(data_dir: &Path) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for site in 0..SITES {
        let dir = data_dir.join(format!("site-{site}"));
        if let Ok(Some((_seq, entries))) = read_snapshot_file(&dir.join(SNAPSHOT_FILE)) {
            for e in entries {
                keys.insert(e.name.as_str().to_owned());
            }
        }
        let Ok((records, torn)) = read_log_file(&dir.join(LOG_FILE)) else {
            continue;
        };
        assert!(
            torn.is_none(),
            "site {site}: --fsync always must not leave a torn tail: {torn:?}"
        );
        for r in records {
            match &r.req {
                RegistryRequest::Put { entry } => {
                    keys.insert(entry.name.as_str().to_owned());
                }
                RegistryRequest::Absorb { entries } => {
                    for e in entries {
                        keys.insert(e.name.as_str().to_owned());
                    }
                }
                _ => {}
            }
        }
    }
    keys
}

/// One full cycle: boot cold, publish acked writes, SIGKILL, audit the
/// disk, reboot with `--recover`, re-resolve everything.
fn kill_and_recover(strategy: &str, kind: StrategyKind, seed: u64, root: &Path) {
    let data_dir = root.join(format!("{strategy}-{seed}"));
    std::fs::create_dir_all(&data_dir).expect("create data dir");

    // Phase 1: cold boot, publish, SIGKILL mid-life.
    let mut cluster = boot(strategy, &data_dir, false);
    assert_eq!(
        cluster.recovered_lines, 0,
        "cold boot has nothing to replay"
    );
    let mut acked: Vec<(String, SiteId)> = Vec::new();
    {
        let transport = transport_for(&cluster.addrs, CALL_TIMEOUT);
        let sites: Vec<SiteId> = (0..SITES as u16).map(SiteId).collect();
        let controller = Arc::new(ArchitectureController::with_kind(kind, sites));
        for i in 0..WRITES_PER_CELL {
            // Spread publishers over sites so DHT ownership and the
            // local-replica path both see traffic.
            let site = SiteId(((seed as usize + i) % SITES) as u16);
            let client = StrategyClient::new(
                Arc::clone(&transport),
                Arc::clone(&controller),
                ClientConfig { site, node: 0 },
            );
            let key = format!("kr-{strategy}-{seed}-{i}");
            client
                .publish(&key, 64 + i as u64)
                .unwrap_or_else(|e| panic!("publish {key}: {e}"));
            acked.push((key, site));
        }
    }
    cluster.child.kill().expect("SIGKILL server");
    let _ = cluster.child.wait();

    // Phase 2: the disk alone must already witness every acked write.
    let on_disk = keys_on_disk(&data_dir);
    for (key, _) in &acked {
        assert!(
            on_disk.contains(key),
            "{strategy}/seed {seed}: acked '{key}' missing from on-disk WAL state"
        );
    }

    // Phase 3: restart with --recover; every acked key resolves again.
    let mut cluster = boot(strategy, &data_dir, true);
    assert!(
        cluster.recovered_lines > 0,
        "{strategy}/seed {seed}: restart printed no RECOVERED banner"
    );
    {
        let transport = transport_for(&cluster.addrs, CALL_TIMEOUT);
        let sites: Vec<SiteId> = (0..SITES as u16).map(SiteId).collect();
        let controller = Arc::new(ArchitectureController::with_kind(kind, sites));
        for (key, site) in &acked {
            // Resolve from the site that got the ack: its probe list
            // starts with the sync target the durability promise covers.
            let client = StrategyClient::new(
                Arc::clone(&transport),
                Arc::clone(&controller),
                ClientConfig {
                    site: *site,
                    node: 0,
                },
            );
            client.resolve(key).unwrap_or_else(|e| {
                panic!("{strategy}/seed {seed}: '{key}' lost across SIGKILL+recover: {e}")
            });
        }
    }
    // Graceful stop this time: close stdin, drain stdout to its end
    // (the server prints a STOPPED banner on the way out), then reap.
    drop(cluster.child.stdin.take());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut cluster.stdout, &mut rest).expect("drain server stdout");
    assert!(
        rest.contains("STOPPED"),
        "recovered server did not shut down cleanly: {rest:?}"
    );
    let status = cluster.child.wait().expect("server exit");
    assert!(status.success(), "recovered server exited with {status}");
}

/// Data-dir root: `GEOMETA_KILL_RECOVER_DIR` when CI wants the state
/// kept for artifact upload, else a per-process temp dir.
fn data_root() -> (PathBuf, bool) {
    match std::env::var_os("GEOMETA_KILL_RECOVER_DIR") {
        Some(dir) => (PathBuf::from(dir), true),
        None => (
            std::env::temp_dir().join(format!("geometa-kill-recover-{}", std::process::id())),
            false,
        ),
    }
}

#[test]
fn acked_writes_survive_sigkill_and_recover() {
    let (root, keep) = data_root();
    std::fs::create_dir_all(&root).expect("create data root");
    for (strategy, kind) in [
        ("centralized", StrategyKind::Centralized),
        ("dht-local-replica", StrategyKind::DhtLocalReplica),
    ] {
        for seed in [2u64, 3, 5, 8] {
            kill_and_recover(strategy, kind, seed, &root);
        }
    }
    if !keep {
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A base port where all `SITES` consecutive ports currently bind. The
/// probe listeners are dropped before the server boots — a small race,
/// tolerated because this tier already owns real processes and ports.
fn free_base_port() -> u16 {
    let mut base = 7200 + (std::process::id() % 2000) as u16;
    'outer: for _ in 0..64 {
        let mut probes = Vec::new();
        for i in 0..SITES as u16 {
            match std::net::TcpListener::bind(("127.0.0.1", base + i)) {
                Ok(l) => probes.push(l),
                Err(_) => {
                    base += SITES as u16 + 1;
                    continue 'outer;
                }
            }
        }
        return base;
    }
    panic!("no free base port found");
}

/// The cast pump's dead-peer backoff must *recover*: strikes accumulate
/// while the peer is down and reset to zero after the reborn peer takes
/// a delivery. One transport lives across the kill and the restart —
/// the cluster must come back on the same ports for its strike history
/// to be about the same addresses.
#[test]
fn cast_backoff_strikes_reset_after_peer_recovery() {
    let (root, keep) = data_root();
    let data_dir = root.join("cast-backoff-recovery");
    std::fs::create_dir_all(&data_dir).expect("create data dir");
    let base = free_base_port();

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_geometa-server"));
    cmd.args(["--sites", &SITES.to_string(), "--strategy", "centralized"])
        .args(["--base-port", &base.to_string(), "--fsync", "always"])
        .arg("--data-dir")
        .arg(&data_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn geometa-server");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    wait_ready(&mut stdout);

    let addrs: Vec<SocketAddr> = (0..SITES as u16)
        .map(|i| format!("127.0.0.1:{}", base + i).parse().unwrap())
        .collect();
    let transport = transport_for(&addrs, CALL_TIMEOUT);
    let target = SiteId(1);
    let absorb = || RegistryRequest::Absorb {
        entries: vec![geometa_core::RegistryEntry::new(
            "cast-backoff-probe",
            64,
            geometa_core::FileLocation {
                site: target,
                node: 0,
            },
            1,
        )],
    };

    // One acked write so `--recover` later has on-disk state to replay,
    // then a warm cast delivery, confirmed by reading the absorbed entry
    // back from the target (strikes alone start at 0, which proves
    // nothing about delivery).
    {
        let sites: Vec<SiteId> = (0..SITES as u16).map(SiteId).collect();
        let controller = Arc::new(ArchitectureController::with_kind(
            StrategyKind::Centralized,
            sites,
        ));
        let client = StrategyClient::new(
            Arc::clone(&transport),
            controller,
            ClientConfig {
                site: SiteId(0),
                node: 0,
            },
        );
        client
            .publish("cast-backoff-anchor", 64)
            .expect("publish anchor");
    }
    transport.cast(target, absorb());
    wait_until("first cast delivered", || {
        matches!(
            transport.call(
                target,
                RegistryRequest::Get {
                    key: geometa_core::Key::from("cast-backoff-probe"),
                },
            ),
            geometa_core::protocol::RegistryResponse::Found { .. }
        )
    });
    assert_eq!(transport.cast_strikes(target), 0);

    // Kill the whole cluster; casts now strike out.
    child.kill().expect("SIGKILL server");
    let _ = child.wait();
    wait_until("strikes accumulate against the dead peer", || {
        transport.cast(target, absorb());
        transport.cast_strikes(target) >= 2
    });
    let down_strikes = transport.cast_strikes(target);
    assert!(down_strikes >= 2, "dead peer accumulated {down_strikes}");

    // Rebirth on the same ports.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_geometa-server"));
    cmd.args(["--sites", &SITES.to_string(), "--strategy", "centralized"])
        .args(["--base-port", &base.to_string(), "--fsync", "always"])
        .args(["--recover"])
        .arg("--data-dir")
        .arg(&data_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
    let mut child = cmd.spawn().expect("respawn geometa-server");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    wait_ready(&mut stdout);

    // One delivered cast wipes the whole strike history for the target.
    wait_until("strikes reset after the peer recovered", || {
        transport.cast(target, absorb());
        transport.cast_strikes(target) == 0
    });

    drop(child.stdin.take());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).expect("drain server stdout");
    let _ = child.wait();
    if !keep {
        let _ = std::fs::remove_dir_all(&data_dir);
    }
}

/// Drain server stdout until the READY banner.
fn wait_ready(stdout: &mut BufReader<std::process::ChildStdout>) {
    loop {
        let mut line = String::new();
        assert!(
            stdout.read_line(&mut line).expect("server stdout") > 0,
            "server exited before READY"
        );
        if line.starts_with("READY") {
            return;
        }
    }
}

/// Poll `cond` for up to 30s (cast cooldowns reach seconds under
/// repeated strikes), panicking with `what` on timeout.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..600 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn recover_against_empty_dir_is_an_error() {
    let (root, keep) = data_root();
    let dir = root.join("empty-recover");
    std::fs::create_dir_all(&dir).expect("create data dir");
    let out = Command::new(env!("CARGO_BIN_EXE_geometa-server"))
        .args(["--sites", "2", "--base-port", "0", "--recover"])
        .arg("--data-dir")
        .arg(&dir)
        .stdin(Stdio::null())
        .output()
        .expect("run geometa-server");
    assert_eq!(out.status.code(), Some(2), "usage-error exit code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--recover"),
        "stderr names the failing flag: {stderr}"
    );
    if !keep {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
