//! The headline live-chaos tier: a join/leave **storm** on a real TCP
//! cluster while the [`ChaosLayer`] injects frame drops, connection
//! resets, delays, slow drips and asymmetric partition windows into
//! every byte — client traffic *and* the background rebalance
//! transfers both flow through the seeded proxies.
//!
//! The invariant, per (strategy × seed) cell:
//!   1. **Zero acked writes lost.** Every publish the client saw `Ok`
//!      for resolves after the storm, read back through the chaos-free
//!      side door ([`ChaosLayer::direct_addrs`]) so verification is not
//!      itself subject to injected drops.
//!   2. **Bounded movement.** Each membership flip's `last_moved`
//!      counter stays under a generous fraction of the total entries —
//!      a rehash-everything regression trips it even under chaos.
//!   3. **Chaos actually happened.** `ChaosStats::total_faults() > 0`,
//!      so a silently misconfigured proxy cannot green-wash the run.
//!
//! Every fault is a pure function of `(seed, site, direction,
//! connection index)`; a failing cell is replayed by exporting
//! `GEOMETA_CHAOS_NET_SEEDS=<seed>` and re-running the test. Set
//! `GEOMETA_CHAOS_NET_DIR=<dir>` to run the cells on file-backed WALs
//! and keep the logs as artifacts (the CI smoke job does both).

use geometa_core::protocol::{ReconfigureOp, RegistryRequest, RegistryResponse, SiteStatus};
use geometa_core::runtime::{RuntimeConfig, ServiceRuntime, WalConfig};
use geometa_core::strategy::StrategyKind;
use geometa_core::transport::RegistryTransport;
use geometa_core::wal::FsyncPolicy;
use geometa_core::Key;
use geometa_net::chaos::Direction;
use geometa_net::{
    loopback_topology, transport_for, ChaosConfig, ChaosLayer, PartitionWindow, TcpClientTransport,
    TcpConfig, TcpLayer,
};
use geometa_sim::topology::SiteId;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Concurrent publishers riding out the storm.
const WRITERS: usize = 2;
/// Budget for one membership transition to settle under chaos.
const TRANSITION_BUDGET: Duration = Duration::from_secs(30);
/// `last_moved` ceiling as a fraction of total entries. One join or
/// leave in a 3-or-4-member ring ideally moves ~1/4 to ~1/3; anywhere
/// under this still proves the ring is consistent, while a
/// rehash-everything bug moves ~3/4 and trips it.
const MOVE_FRAC_CEILING: f64 = 0.6;
/// Absolute slack on the movement bound for small populations early in
/// the storm, where one vnode's worth of keys can exceed the fraction.
const MOVE_SLACK: u64 = 32;

/// Short, path- and key-safe strategy tag (`label()` has spaces).
fn tag(kind: StrategyKind) -> &'static str {
    match kind {
        StrategyKind::Centralized => "cn",
        StrategyKind::Replicated => "rep",
        StrategyKind::DhtNonReplicated => "dn",
        StrategyKind::DhtLocalReplica => "dr",
    }
}

fn seeds() -> Vec<u64> {
    let raw = std::env::var("GEOMETA_CHAOS_NET_SEEDS").unwrap_or_else(|_| "11,17,23,29".into());
    let seeds: Vec<u64> = raw
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|e| panic!("GEOMETA_CHAOS_NET_SEEDS: bad seed '{s}': {e}"))
        })
        .collect();
    assert!(!seeds.is_empty(), "GEOMETA_CHAOS_NET_SEEDS is empty");
    seeds
}

/// Memory WAL by default; file-backed under `GEOMETA_CHAOS_NET_DIR` so
/// a failing CI cell leaves its logs behind as artifacts.
fn wal_config(kind: StrategyKind, seed: u64) -> WalConfig {
    match std::env::var("GEOMETA_CHAOS_NET_DIR") {
        Ok(dir) => WalConfig::File {
            data_dir: std::path::PathBuf::from(dir).join(format!("{}-{seed}", tag(kind))),
            fsync: FsyncPolicy::GroupCommit(Duration::from_millis(5)),
        },
        Err(_) => WalConfig::Memory,
    }
}

/// Clean (unproxied) transport over the inner layer's addresses, in
/// site order — the verification and control plane. Chaos targets the
/// data plane and the rebalance transfers, which dial the proxies.
fn direct_transport(layer: &ChaosLayer) -> Arc<TcpClientTransport> {
    let map = layer.direct_addrs();
    let addrs: Vec<SocketAddr> = (0..map.len() as u16).map(|s| map[&SiteId(s)]).collect();
    transport_for(&addrs, Duration::from_secs(3))
}

/// Submit `op` for `target` at site 0 and poll until the membership
/// reflects it (`want_member`) at `want_epoch`+ with no rebalance in
/// flight. Resubmits on refusal — under chaos a previous transition's
/// stragglers may briefly hold the rebalance slot.
fn run_transition(
    transport: &TcpClientTransport,
    op: ReconfigureOp,
    target: SiteId,
    want_epoch: u64,
    want_member: bool,
) -> SiteStatus {
    let deadline = Instant::now() + TRANSITION_BUDGET;
    let mut submitted = false;
    loop {
        assert!(
            Instant::now() < deadline,
            "{op:?} of site {} never settled (wanted epoch {want_epoch})",
            target.0
        );
        if let RegistryResponse::Status { status } =
            transport.call(SiteId(0), RegistryRequest::Status)
        {
            let member = status.members.contains(&target);
            if status.epoch >= want_epoch && member == want_member && !status.rebalancing {
                return status;
            }
            if !submitted && !status.rebalancing {
                if let RegistryResponse::Ack =
                    transport.call(SiteId(0), RegistryRequest::Reconfigure { op, site: target })
                {
                    submitted = true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Entries across every reachable site (for the movement bound).
fn total_entries(transport: &TcpClientTransport) -> u64 {
    transport
        .sites()
        .into_iter()
        .filter_map(|site| match transport.call(site, RegistryRequest::Status) {
            RegistryResponse::Status { status } => Some(status.entries),
            _ => None,
        })
        .sum()
}

fn assert_movement_bounded(step: &str, status: &SiteStatus, total: u64, seed: u64) {
    let ceiling = (total as f64 * MOVE_FRAC_CEILING) as u64 + MOVE_SLACK;
    assert!(
        status.last_moved <= ceiling,
        "seed {seed} {step}: moved {} of {total} entries (ceiling {ceiling}) — rebalance movement is not bounded",
        status.last_moved
    );
}

/// One (strategy × seed) storm cell.
fn storm_cell(kind: StrategyKind, seed: u64) {
    let t0 = Instant::now();
    let chaos = ChaosConfig {
        partitions: vec![
            // Site 1 goes deaf early (requests to it vanish), site 2
            // goes mute later (its replies vanish) — both asymmetric,
            // both while writers and a rebalance are in flight.
            PartitionWindow {
                site: SiteId(1),
                direction: Direction::ToServer,
                start: Duration::from_millis(400),
                len: Duration::from_millis(200),
            },
            PartitionWindow {
                site: SiteId(2),
                direction: Direction::ToClient,
                start: Duration::from_millis(900),
                len: Duration::from_millis(200),
            },
        ],
        ..ChaosConfig::mild(seed)
    };
    let layer = ChaosLayer::over(
        TcpLayer::new(TcpConfig {
            // Short call deadline: a dropped frame should cost one
            // retry tick, not a multi-second stall per fault.
            call_timeout: Duration::from_millis(750),
            ..TcpConfig::default()
        }),
        chaos,
    );
    let rt = ServiceRuntime::start(
        RuntimeConfig {
            topology: loopback_topology(4),
            kind,
            members: Some(vec![SiteId(0), SiteId(1), SiteId(2)]),
            wal: wal_config(kind, seed),
            rebalance_throttle: Duration::ZERO,
            ..RuntimeConfig::default()
        },
        layer,
    );
    let stats = rt.layer().stats();

    let stop = AtomicBool::new(false);
    let acked: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let storm = std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (stop, acked, rt) = (&stop, &acked, &rt);
            scope.spawn(move || {
                let client = rt.client(SiteId(w as u16), 0);
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("chaos-{}-{seed}-w{w}-{i}", tag(kind));
                    // A failed publish is chaos doing its job; only an
                    // *acked* write joins the must-survive set.
                    if client.publish(&key, 64 + i as u64).is_ok() {
                        acked.lock().unwrap().push(key);
                    }
                    i += 1;
                    std::thread::sleep(Duration::from_millis(3));
                }
            });
        }

        // The storm: grow to 4, shrink to 3, grow back — three epoch
        // flips with writers hammering away through the proxies.
        let control = direct_transport(rt.layer());
        let s1 = run_transition(&control, ReconfigureOp::Join, SiteId(3), 1, true);
        assert_movement_bounded("join site 3", &s1, total_entries(&control), seed);
        let s2 = run_transition(&control, ReconfigureOp::Leave, SiteId(1), 2, false);
        assert_movement_bounded("leave site 1", &s2, total_entries(&control), seed);
        let s3 = run_transition(&control, ReconfigureOp::Join, SiteId(1), 3, true);
        assert_movement_bounded("rejoin site 1", &s3, total_entries(&control), seed);
        // Transitions can settle faster than the partition windows
        // open; keep the writers hammering until both windows have
        // passed so every cell actually publishes through a blackout.
        while t0.elapsed() < Duration::from_millis(1_300) {
            std::thread::sleep(Duration::from_millis(25));
        }
        stop.store(true, Ordering::Relaxed);
        s3
    });

    // Verification over the clean side door. Refresh first so Get
    // frames carry the final epoch instead of eating one WrongEpoch
    // round-trip per key.
    let verify = direct_transport(rt.layer());
    verify
        .refresh_membership()
        .expect("post-storm membership refresh");
    let keys = acked.into_inner().expect("acked set");
    assert!(
        !keys.is_empty(),
        "seed {seed}: no write was ever acked — the cell tested nothing"
    );
    let mut lost = Vec::new();
    for key in &keys {
        let mut found = false;
        'key: for round in 0..40 {
            for site in verify.sites() {
                if let RegistryResponse::Found { .. } = verify.call(
                    site,
                    RegistryRequest::Get {
                        key: Key::from(key.as_str()),
                    },
                ) {
                    found = true;
                    break 'key;
                }
            }
            // Stragglers from the final flip may still be absorbing.
            if round < 39 {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        if !found {
            lost.push(key.clone());
        }
    }
    assert!(
        lost.is_empty(),
        "seed {seed} ({kind:?}): {} of {} acked writes LOST: {:?}",
        lost.len(),
        keys.len(),
        &lost[..lost.len().min(10)]
    );
    assert!(
        stats.total_faults() > 0,
        "seed {seed}: the chaos layer injected nothing — proxies are miswired"
    );
    eprintln!(
        "chaos-net cell {}/{seed}: acked {} epoch {} | forwarded {} dropped {} resets {} delays {} drips {} partition_drops {}",
        kind.label(),
        keys.len(),
        storm.epoch,
        stats.frames_forwarded.load(Ordering::Relaxed),
        stats.frames_dropped.load(Ordering::Relaxed),
        stats.resets.load(Ordering::Relaxed),
        stats.delays.load(Ordering::Relaxed),
        stats.drips.load(Ordering::Relaxed),
        stats.partition_drops.load(Ordering::Relaxed),
    );
    rt.shutdown();
}

#[test]
fn join_leave_storm_under_chaos_dht() {
    for seed in seeds() {
        storm_cell(StrategyKind::DhtNonReplicated, seed);
    }
}

#[test]
fn join_leave_storm_under_chaos_centralized() {
    for seed in seeds() {
        storm_cell(StrategyKind::Centralized, seed);
    }
}
