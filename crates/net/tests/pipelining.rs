//! Wire-level regression tests for the pipelined client: exactly-once
//! call delivery (the PR 8 headline bugfix), sequence-id correlation
//! under fragmented out-of-order delivery, reconnects, and fast failure
//! on refused connections. Every test runs the real `TcpClientTransport`
//! against a hand-rolled fake server so the exact byte traffic — most
//! importantly *how many request frames the server ever saw* — can be
//! asserted.

use geometa_core::protocol::{RegistryRequest, RegistryResponse};
use geometa_core::transport::RegistryTransport;
use geometa_core::{FileLocation, MetaError, RegistryEntry};
use geometa_net::frame::{Fill, FrameReader};
use geometa_net::server::{MODE_CALL_EPOCH, MODE_CALL_SEQ};
use geometa_net::TcpClientTransport;
use geometa_sim::topology::SiteId;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn transport_to(addr: SocketAddr, call_timeout: Duration) -> TcpClientTransport {
    let addrs: HashMap<SiteId, SocketAddr> = std::iter::once((SiteId(0), addr)).collect();
    TcpClientTransport::new(addrs, call_timeout, Duration::from_millis(5))
}

/// Read one complete frame off a blocking socket (test-side peer).
fn read_frame(stream: &mut TcpStream, reader: &mut FrameReader) -> Option<bytes::Bytes> {
    loop {
        match reader.next_frame().expect("well-framed traffic") {
            Some(body) => return Some(body),
            None => match reader.fill(stream).ok()? {
                Fill::Progress | Fill::Idle => continue,
                Fill::Eof => return None,
            },
        }
    }
}

/// Split a client call frame body into (seq, decoded request).
/// Epoch-checked requests (Get/Put/Remove) arrive as CALL_EPOCH
/// (`[mode][seq][epoch u64][req]`), the rest as CALL_SEQ
/// (`[mode][seq][req]`); the response format is the same for both.
fn parse_call(body: &bytes::Bytes) -> (u32, RegistryRequest) {
    let seq = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
    let req_at = match body[0] {
        MODE_CALL_SEQ => 5,
        MODE_CALL_EPOCH => 5 + 8,
        mode => panic!("pipelined client sent unexpected frame mode {mode}"),
    };
    let req = RegistryRequest::decode(body.slice(req_at..)).expect("decodable request");
    // Routing-sensitive requests must carry the epoch stamp — a client
    // that silently downgrades them to CALL_SEQ would dodge the
    // server's WrongEpoch staleness check.
    if matches!(
        req,
        RegistryRequest::Get { .. } | RegistryRequest::Put { .. } | RegistryRequest::Remove { .. }
    ) {
        assert_eq!(body[0], MODE_CALL_EPOCH, "{req:?} must be epoch-stamped");
    }
    (seq, req)
}

/// Frame a CALL_SEQ response (`[u32 seq][response]`) onto a byte buffer.
fn push_response(wire: &mut Vec<u8>, seq: u32, resp: &RegistryResponse) {
    let mut body = seq.to_le_bytes().to_vec();
    body.extend_from_slice(&resp.encode());
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
}

fn put_request(name: &str) -> RegistryRequest {
    RegistryRequest::Put {
        entry: RegistryEntry::new(
            name.to_string(),
            1,
            FileLocation {
                site: SiteId(0),
                node: 0,
            },
            0,
        ),
    }
}

/// **The headline regression.** A server that *applies* the write, then
/// stalls past the client's call timeout before responding, must see the
/// request exactly once: the old pooled client retried on `TimedOut` and
/// delivered (and applied) the Put twice.
#[test]
fn timed_out_call_is_never_resent() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let call_timeout = Duration::from_millis(250);

    // geometa-lint: allow(untracked-thread) test fake server, joined at the end of the test
    let server = std::thread::spawn(move || -> usize {
        let mut applied = 0usize;
        // Serve connections until the whole test window closes; a
        // retrying client would show up either on this connection or on
        // a fresh one, and both paths land in `applied`.
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut conns: Vec<(TcpStream, FrameReader)> = Vec::new();
        while Instant::now() < deadline {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_read_timeout(Some(Duration::from_millis(10)))
                        .expect("read timeout");
                    conns.push((stream, FrameReader::new()));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
            for (stream, reader) in &mut conns {
                while let Ok(Some(body)) = reader.next_frame() {
                    let (seq, _req) = parse_call(&body);
                    applied += 1;
                    if applied == 1 {
                        // Apply, stall past the client's deadline, then
                        // answer — the classic slow-server shape.
                        std::thread::sleep(call_timeout * 3);
                        let mut wire = Vec::new();
                        push_response(&mut wire, seq, &RegistryResponse::Ack);
                        let _ = stream.write_all(&wire);
                        let _ = stream.flush();
                    }
                }
                let _ = reader.fill(stream);
            }
        }
        applied
    });

    let transport = transport_to(addr, call_timeout);
    let resp = transport.call(SiteId(0), put_request("exactly/once"));
    assert!(
        matches!(
            resp,
            RegistryResponse::Error {
                error: MetaError::Unavailable
            }
        ),
        "a timed-out call must surface Unavailable, got {resp:?}"
    );
    drop(transport);
    let applied = server.join().expect("server thread");
    assert_eq!(
        applied, 1,
        "the request must reach the server exactly once — a second frame means the client re-sent after TimedOut"
    );
}

/// N interleaved in-flight calls on ONE connection resolve to the
/// correct callers even when the server answers in reverse order and
/// dribbles the bytes a few at a time (arbitrary refragmentation, the
/// `frames_survive_arbitrary_fragmentation` scaffolding taken to the
/// transport level).
#[test]
fn pipelined_responses_correlate_under_fragmented_out_of_order_delivery() {
    const CALLERS: usize = 16;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // geometa-lint: allow(untracked-thread) test fake server, joined at the end of the test
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = FrameReader::new();
        // Hold every request until all callers are in flight — that is
        // what makes this *pipelining* and not sequential round trips.
        let mut calls: Vec<(u32, RegistryRequest)> = Vec::new();
        while calls.len() < CALLERS {
            let body = read_frame(&mut stream, &mut reader).expect("request frame");
            calls.push(parse_call(&body));
        }
        // Answer in reverse arrival order: each response names the key
        // its request asked for, so a mis-correlated client is caught.
        let mut wire = Vec::new();
        for (seq, req) in calls.iter().rev() {
            let RegistryRequest::Get { key } = req else {
                panic!("expected Get, got {req:?}");
            };
            let idx: u64 = key
                .as_str()
                .trim_start_matches("pipelined/k")
                .parse()
                .expect("key suffix");
            let resp = RegistryResponse::Found {
                entry: RegistryEntry::new(
                    key.as_str().to_string(),
                    1000 + idx,
                    FileLocation {
                        site: SiteId(0),
                        node: 0,
                    },
                    0,
                ),
            };
            push_response(&mut wire, *seq, &resp);
        }
        // Dribble the response bytes in tiny slices.
        for chunk in wire.chunks(5) {
            stream.write_all(chunk).expect("dribble");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_micros(300));
        }
    });

    let transport = std::sync::Arc::new(transport_to(addr, Duration::from_secs(10)));
    std::thread::scope(|scope| {
        for i in 0..CALLERS {
            let transport = std::sync::Arc::clone(&transport);
            scope.spawn(move || {
                let key = geometa_cache::Key::from(format!("pipelined/k{i}"));
                let resp = transport.call(SiteId(0), RegistryRequest::Get { key });
                let RegistryResponse::Found { entry } = resp else {
                    panic!("caller {i}: expected Found, got {resp:?}");
                };
                assert_eq!(entry.name.as_str(), format!("pipelined/k{i}"));
                assert_eq!(
                    entry.size,
                    1000 + i as u64,
                    "caller {i} received another caller's response"
                );
            });
        }
    });
    server.join().expect("server thread");
}

/// A server that closes the connection after each response: the next
/// call dials a fresh connection (the reactor reaps the dead one) and
/// every request is still delivered exactly once.
#[test]
fn reconnects_after_server_closes_idle_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // geometa-lint: allow(untracked-thread) test fake server, joined at the end of the test
    let server = std::thread::spawn(move || -> usize {
        let mut served = 0usize;
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut reader = FrameReader::new();
            let body = read_frame(&mut stream, &mut reader).expect("request");
            let (seq, _req) = parse_call(&body);
            served += 1;
            let mut wire = Vec::new();
            push_response(&mut wire, seq, &RegistryResponse::Ack);
            stream.write_all(&wire).expect("respond");
            stream.flush().expect("flush");
            // Close after responding (server restart / idle reap).
        }
        served
    });

    let transport = transport_to(addr, Duration::from_secs(5));
    let first = transport.call(SiteId(0), put_request("reconnect/a"));
    assert!(matches!(first, RegistryResponse::Ack), "got {first:?}");
    // Give the reactor a few ticks to observe the FIN and reap the
    // connection; the second call then dials fresh deterministically.
    std::thread::sleep(Duration::from_millis(100));
    let second = transport.call(SiteId(0), put_request("reconnect/b"));
    assert!(matches!(second, RegistryResponse::Ack), "got {second:?}");
    drop(transport);
    assert_eq!(server.join().expect("server"), 2);
}

/// A refused connection is a provable not-sent: the call fails fast as
/// Unavailable (after its one retry-safe redial) instead of burning the
/// full call timeout.
#[test]
fn refused_connection_fails_fast_as_unavailable() {
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
        // listener drops here: the port now refuses connections
    };
    let transport = transport_to(addr, Duration::from_secs(30));
    let t0 = Instant::now();
    let resp = transport.call(SiteId(0), put_request("refused"));
    let elapsed = t0.elapsed();
    assert!(
        matches!(
            resp,
            RegistryResponse::Error {
                error: MetaError::Unavailable
            }
        ),
        "got {resp:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "refused connect took {elapsed:?} — should fail fast, not wait out the call timeout"
    );
}
