//! Strategy advisor: the paper's §VII "best-match" analysis as an API.
//!
//! "Which strategy fits what type of workflow on what kind of deployment?"
//! The paper's discussion answers qualitatively:
//!
//! * **Centralized** — "the best option for small scale workflows: using
//!   few tens of nodes, managing at most 500 files each, running in a
//!   single site";
//! * **Replicated** — "workflows manipulating average sets of very large
//!   files (i.e. tens or hundreds of MBs), where metadata operations are
//!   not so frequent";
//! * **Decentralized non-replicated** — "workflows with high degree of
//!   parallelism (e.g. following a scatter/gather pattern), where tasks
//!   and data are widely distributed across datacenters";
//! * **Decentralized locally-replicated** — "workflows with a larger
//!   proportion of sequential jobs (e.g. with pipeline patterns)" and
//!   metadata-intensive workloads generally.
//!
//! [`recommend`] encodes those rules over a [`WorkloadProfile`], so a
//! deployment can pick (or switch, via the
//! [`ArchitectureController`](crate::controller::ArchitectureController))
//! a strategy programmatically.

use crate::strategy::StrategyKind;

/// The dominant data-access shape of a workflow (paper §II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DominantPattern {
    /// Long chains of sequential, tightly file-coupled tasks.
    Pipeline,
    /// Wide fan-out/fan-in parallelism.
    ScatterGather,
    /// No single dominant shape.
    Mixed,
}

/// Coarse description of a workload and its deployment.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadProfile {
    /// Execution nodes in the deployment.
    pub nodes: usize,
    /// Datacenters the deployment spans.
    pub sites: usize,
    /// Files handled per node over the run.
    pub files_per_node: usize,
    /// Typical file size in bytes.
    pub avg_file_size: u64,
    /// Dominant access pattern.
    pub pattern: DominantPattern,
}

impl WorkloadProfile {
    /// Whether this counts as "small scale" in the paper's sense: few tens
    /// of nodes, ≤ ~500 files each, effectively single-site.
    pub fn is_small_scale(&self) -> bool {
        self.sites <= 1 || (self.nodes <= 32 && self.files_per_node <= 500)
    }

    /// Whether files are "very large" (tens to hundreds of MB), making
    /// metadata operations comparatively rare.
    pub fn has_large_files(&self) -> bool {
        self.avg_file_size >= 10 * 1024 * 1024
    }

    /// Whether the workload is metadata-intensive: many small files per
    /// node across several sites.
    pub fn is_metadata_intensive(&self) -> bool {
        self.files_per_node > 500 && !self.has_large_files()
    }
}

/// Recommend the paper's best-match strategy for a workload.
pub fn recommend(profile: &WorkloadProfile) -> StrategyKind {
    // Single-site or genuinely small deployments: the baseline wins — the
    // latency hierarchy that motivates everything else is absent.
    if profile.is_small_scale() {
        return StrategyKind::Centralized;
    }
    // Few, very large files => metadata is rare; per-site replicas with a
    // relaxed sync agent give local reads everywhere.
    if profile.has_large_files() && !profile.is_metadata_intensive() {
        return StrategyKind::Replicated;
    }
    // Metadata-intensive, multi-site: decentralize; the pattern decides
    // whether local replicas pay for themselves.
    match profile.pattern {
        DominantPattern::ScatterGather => StrategyKind::DhtNonReplicated,
        DominantPattern::Pipeline | DominantPattern::Mixed => StrategyKind::DhtLocalReplica,
    }
}

/// Human-readable justification for a recommendation (mirrors §VII-A).
pub fn explain(profile: &WorkloadProfile) -> String {
    let kind = recommend(profile);
    let why = match kind {
        StrategyKind::Centralized => {
            "small-scale / single-site: intra-datacenter latencies keep a single registry fast"
        }
        StrategyKind::Replicated => {
            "few, large files: infrequent metadata ops give the sync agent time to keep replicas consistent"
        }
        StrategyKind::DhtNonReplicated => {
            "wide parallelism across sites: hash-partitioning preserves linear scalability"
        }
        StrategyKind::DhtLocalReplica => {
            "sequential/metadata-intensive jobs: local replicas serve co-scheduled consumers instantly"
        }
    };
    format!("{} — {}", kind.label(), why)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadProfile {
        WorkloadProfile {
            nodes: 64,
            sites: 4,
            files_per_node: 2_000,
            avg_file_size: 256 * 1024,
            pattern: DominantPattern::Mixed,
        }
    }

    #[test]
    fn small_scale_gets_centralized() {
        // The paper: "few tens of nodes, managing at most 500 files each".
        let p = WorkloadProfile {
            nodes: 16,
            files_per_node: 300,
            ..base()
        };
        assert_eq!(recommend(&p), StrategyKind::Centralized);
    }

    #[test]
    fn single_site_always_centralized() {
        let p = WorkloadProfile {
            sites: 1,
            nodes: 128,
            files_per_node: 100_000,
            ..base()
        };
        assert_eq!(recommend(&p), StrategyKind::Centralized);
    }

    #[test]
    fn large_files_get_replicated() {
        // "average sets of very large files ... metadata operations are not
        // so frequent".
        let p = WorkloadProfile {
            files_per_node: 50,
            avg_file_size: 100 * 1024 * 1024,
            nodes: 64,
            ..base()
        };
        assert_eq!(recommend(&p), StrategyKind::Replicated);
    }

    #[test]
    fn scatter_gather_gets_dht() {
        let p = WorkloadProfile {
            pattern: DominantPattern::ScatterGather,
            ..base()
        };
        assert_eq!(recommend(&p), StrategyKind::DhtNonReplicated);
    }

    #[test]
    fn pipelines_get_local_replicas() {
        let p = WorkloadProfile {
            pattern: DominantPattern::Pipeline,
            ..base()
        };
        assert_eq!(recommend(&p), StrategyKind::DhtLocalReplica);
    }

    #[test]
    fn metadata_intensive_mixed_gets_local_replicas() {
        assert_eq!(recommend(&base()), StrategyKind::DhtLocalReplica);
    }

    #[test]
    fn explanations_name_the_strategy() {
        for p in [
            base(),
            WorkloadProfile { sites: 1, ..base() },
            WorkloadProfile {
                avg_file_size: 64 * 1024 * 1024,
                files_per_node: 10,
                ..base()
            },
            WorkloadProfile {
                pattern: DominantPattern::ScatterGather,
                ..base()
            },
        ] {
            let text = explain(&p);
            assert!(text.contains(recommend(&p).label()), "{text}");
        }
    }
}
