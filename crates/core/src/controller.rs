//! The architecture controller: runtime strategy selection.
//!
//! Paper §V: "The Architecture Controller allows to switch between metadata
//! management strategies. The desired strategy is provided as a parameter
//! and can be dynamically modified as new jobs are executed." Strategies
//! plug in and out without touching client code: clients fetch the current
//! strategy per operation.

use crate::hash::{ConsistentRing, SitePlacer};
use crate::strategy::{
    Centralized, DhtLocalReplica, DhtNonReplicated, MetadataStrategy, Replicated, StrategyKind,
};
use geometa_sim::topology::SiteId;
use parking_lot::RwLock;
use std::sync::Arc;

/// Holds the active [`MetadataStrategy`] and swaps it atomically.
pub struct ArchitectureController {
    current: RwLock<Arc<dyn MetadataStrategy>>,
    switches: RwLock<Vec<StrategyKind>>,
}

impl ArchitectureController {
    /// Start with the given strategy.
    pub fn new(initial: Arc<dyn MetadataStrategy>) -> ArchitectureController {
        let kind = initial.kind();
        ArchitectureController {
            current: RwLock::new(initial),
            switches: RwLock::new(vec![kind]),
        }
    }

    /// Convenience constructor: build the standard form of `kind` over
    /// `sites` (centralized home / sync agent at the first site; DHT
    /// placement via a consistent ring with 128 vnodes).
    pub fn with_kind(kind: StrategyKind, sites: Vec<SiteId>) -> ArchitectureController {
        ArchitectureController::new(build_strategy(kind, sites))
    }

    /// The active strategy (cheap Arc clone; safe to hold across an op).
    pub fn strategy(&self) -> Arc<dyn MetadataStrategy> {
        self.current.read().clone()
    }

    /// The active strategy's kind.
    pub fn kind(&self) -> StrategyKind {
        self.current.read().kind()
    }

    /// Switch strategies. In-flight operations keep the strategy they
    /// started with (they hold an `Arc`); new operations see the new one.
    pub fn switch(&self, next: Arc<dyn MetadataStrategy>) {
        let kind = next.kind();
        *self.current.write() = next;
        self.switches.write().push(kind);
    }

    /// Switch to the standard form of `kind` over `sites`.
    pub fn switch_kind(&self, kind: StrategyKind, sites: Vec<SiteId>) {
        self.switch(build_strategy(kind, sites));
    }

    /// History of strategies used (first entry = initial).
    pub fn history(&self) -> Vec<StrategyKind> {
        self.switches.read().clone()
    }
}

/// Virtual nodes per site in every canonical consistent ring. The
/// elastic rebalance planner builds before/after rings with the same
/// count so its placement agrees with the strategies clients run.
pub const RING_VNODES: usize = 128;

/// Build the canonical instance of each strategy kind over `sites`.
pub fn build_strategy(kind: StrategyKind, sites: Vec<SiteId>) -> Arc<dyn MetadataStrategy> {
    assert!(!sites.is_empty(), "strategy needs at least one site");
    match kind {
        StrategyKind::Centralized => Arc::new(Centralized::new(sites[0])),
        StrategyKind::Replicated => {
            let agent = sites[0];
            Arc::new(Replicated::new(sites, agent))
        }
        StrategyKind::DhtNonReplicated => {
            let placer: Arc<dyn SitePlacer> = Arc::new(ConsistentRing::new(sites, RING_VNODES));
            Arc::new(DhtNonReplicated::new(placer))
        }
        StrategyKind::DhtLocalReplica => {
            let placer: Arc<dyn SitePlacer> = Arc::new(ConsistentRing::new(sites, RING_VNODES));
            Arc::new(DhtLocalReplica::new(placer))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> Vec<SiteId> {
        (0..4).map(SiteId).collect()
    }

    #[test]
    fn build_all_kinds() {
        for kind in StrategyKind::all() {
            let s = build_strategy(kind, sites());
            assert_eq!(s.kind(), kind);
        }
    }

    #[test]
    fn controller_switches_atomically() {
        let c = ArchitectureController::with_kind(StrategyKind::Centralized, sites());
        assert_eq!(c.kind(), StrategyKind::Centralized);
        // An in-flight op holds the old strategy.
        let held = c.strategy();
        c.switch_kind(StrategyKind::DhtLocalReplica, sites());
        assert_eq!(held.kind(), StrategyKind::Centralized);
        assert_eq!(c.kind(), StrategyKind::DhtLocalReplica);
    }

    #[test]
    fn history_records_every_switch() {
        let c = ArchitectureController::with_kind(StrategyKind::Centralized, sites());
        c.switch_kind(StrategyKind::Replicated, sites());
        c.switch_kind(StrategyKind::DhtNonReplicated, sites());
        assert_eq!(
            c.history(),
            vec![
                StrategyKind::Centralized,
                StrategyKind::Replicated,
                StrategyKind::DhtNonReplicated
            ]
        );
    }

    #[test]
    fn plans_follow_the_active_strategy() {
        let c = ArchitectureController::with_kind(StrategyKind::Centralized, sites());
        let p1 = c.strategy().write_plan("f", SiteId(2));
        assert_eq!(
            p1.sync_targets,
            vec![SiteId(0)],
            "centralized home is sites[0]"
        );
        c.switch_kind(StrategyKind::DhtLocalReplica, sites());
        let p2 = c.strategy().write_plan("f", SiteId(2));
        assert_eq!(
            p2.sync_targets,
            vec![SiteId(2)],
            "DR writes complete locally"
        );
    }

    #[test]
    fn concurrent_readers_and_switchers() {
        let c = ArchitectureController::with_kind(StrategyKind::Centralized, sites());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1000 {
                        let strat = c.strategy();
                        let _ = strat.read_plan("f", SiteId(1));
                    }
                });
            }
            for kind in [StrategyKind::Replicated, StrategyKind::DhtLocalReplica] {
                c.switch_kind(kind, sites());
            }
        });
        assert_eq!(c.kind(), StrategyKind::DhtLocalReplica);
    }
}
