//! # geometa-core — multi-site metadata management strategies
//!
//! The primary contribution of the reproduced paper (Pineda-Morales,
//! Costan, Antoniu: *Towards Multi-site Metadata Management for
//! Geographically Distributed Cloud Workflows*, CLUSTER 2015): a metadata
//! registry middleware for workflows that span several cloud datacenters,
//! with four interchangeable management strategies:
//!
//! | Strategy | Write | Read |
//! |---|---|---|
//! | [`strategy::Centralized`] | single home registry | home registry |
//! | [`strategy::Replicated`] | local registry, propagated by a [`sync_agent::SyncAgentState`]-driven agent | local registry |
//! | [`strategy::DhtNonReplicated`] | hash-owner registry | hash-owner registry |
//! | [`strategy::DhtLocalReplica`] | local registry + lazy copy to hash owner | local first, then hash owner |
//!
//! Supporting machinery:
//!
//! * [`entry::RegistryEntry`] — minimal per-file metadata (no POSIX
//!   permissions; paper §III-B) with a compact binary codec;
//! * [`hash`] — uniform hashing, consistent-hash ring and rendezvous
//!   hashing for site placement;
//! * [`registry::RegistryInstance`] — one site's registry service on top of
//!   the high-availability cache tier from `geometa-cache`;
//! * [`lazy::LazyBatcher`] — batched, asynchronous ("lazy") metadata
//!   propagation giving eventual consistency (paper §III-D);
//! * [`sync_agent`] — the replicated strategy's synchronization agent;
//! * [`consistency`] — last-writer-wins merging and inconsistency-window
//!   measurement;
//! * [`controller::ArchitectureController`] — runtime strategy switching
//!   (paper §V, "plug-and-play");
//! * [`advisor`] — the §VII "which strategy fits what workload" analysis
//!   as a programmatic recommendation;
//! * [`rebalance`] — elastic metadata migration when sites join/leave
//!   (the §VIII "server volatility" problem);
//! * [`client`] + [`transport`] — strategy-driven client logic over an
//!   abstract transport;
//! * [`protocol`] — the RPC types and their length-prefixed binary wire
//!   codec (the same messages flow over channels, the DES network model,
//!   and framed TCP);
//! * [`wal`] — per-site write-ahead logging (CRC'd length-prefixed
//!   records over the wire codec, group commit, snapshot + truncation)
//!   and torn-tail-tolerant crash recovery;
//! * [`runtime`] — the transport-generic service runtime: registry
//!   ownership, dispatch, delay line, sync-agent driving, failure
//!   injection and graceful shutdown, parameterized over a
//!   [`runtime::ConnectionLayer`];
//! * [`live`] — the channel connection layer: per-site registry service
//!   threads, WAN-delay injection via sleeps, usable from any thread. The
//!   framed-TCP layer lives in the `geometa-net` crate.

pub mod advisor;
pub mod client;
pub mod consistency;
pub mod controller;
pub mod entry;
pub mod hash;
pub mod lazy;
pub mod live;
pub mod metrics;
pub mod plan;
pub mod protocol;
pub mod rebalance;
pub mod registry;
pub mod runtime;
pub mod strategy;
pub mod sync_agent;
pub mod transport;
pub mod wal;

pub use client::{ClientConfig, StrategyClient};
pub use controller::ArchitectureController;
pub use entry::{FileLocation, RegistryEntry};
// Re-exported because the RPC protocol (`protocol::RegistryRequest`) and
// the key-threaded strategy APIs take it.
pub use geometa_cache::Key;
pub use plan::{ReadPlan, WritePlan};
pub use registry::RegistryInstance;
pub use strategy::{
    Centralized, DhtLocalReplica, DhtNonReplicated, MetadataStrategy, Replicated, StrategyKind,
};

/// Errors surfaced by the metadata middleware.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaError {
    /// The entry does not exist in any probed registry instance.
    NotFound,
    /// A registry instance could not be reached / is failed.
    Unavailable,
    /// Optimistic concurrency conflict that exhausted its retry budget.
    Contention,
    /// The request was routed with a placement plan from a retired
    /// membership epoch. Carries the server's current epoch so the client
    /// knows it must refresh its member list before retrying.
    WrongEpoch {
        /// The server's current membership epoch.
        epoch: u64,
    },
    /// Malformed wire payload.
    Codec(String),
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::NotFound => write!(f, "metadata entry not found"),
            MetaError::Unavailable => write!(f, "registry instance unavailable"),
            MetaError::Contention => write!(f, "optimistic concurrency retry budget exhausted"),
            MetaError::WrongEpoch { epoch } => {
                write!(f, "stale membership plan (server is at epoch {epoch})")
            }
            MetaError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for MetaError {}
