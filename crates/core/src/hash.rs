//! Site placement by hashing: who owns a metadata entry?
//!
//! The decentralized strategies map each entry to an *owner site* by
//! hashing "a distinctive attribute of the entry (e.g. the file name)"
//! (paper §IV-C). Three placers are provided:
//!
//! * [`UniformHash`] — `hash(key) mod n`. Constant-time and perfectly
//!   uniform, but adding/removing a site remaps nearly every key — the
//!   elasticity problem the paper's related-work section pins on pure
//!   hashing schemes.
//! * [`ConsistentRing`] — consistent hashing with virtual nodes; membership
//!   changes remap only ~1/n of the keys. This is how the paper's reliance
//!   on a uniform cache that "deals transparently with nodes
//!   arrivals/departures" is realized here.
//! * [`Rendezvous`] — highest-random-weight hashing; same minimal-migration
//!   property, no vnode tuning, O(n) lookup.
//!
//! The `ablation_hash` bench compares the three on migration fraction and
//! lookup cost.

use geometa_cache::hash::fx_hash_str;
use geometa_cache::Key;
use geometa_sim::topology::SiteId;
use std::collections::BTreeMap;

/// Decides which site owns a key.
pub trait SitePlacer: Send + Sync {
    /// The owner site of `key`. Panics only if the placer has no sites.
    fn owner(&self, key: &str) -> SiteId;

    /// The owner site of an interned key. Placers whose decision depends
    /// only on the key's FxHash override this to reuse the precomputed
    /// hash and skip re-scanning the text. Must agree with
    /// [`Self::owner`] on the same text.
    fn owner_key(&self, key: &Key) -> SiteId {
        self.owner(key)
    }

    /// Sites currently participating.
    fn sites(&self) -> Vec<SiteId>;
}

/// `hash(key) mod n` placement over a fixed site list.
#[derive(Clone, Debug)]
pub struct UniformHash {
    sites: Vec<SiteId>,
}

impl UniformHash {
    /// Place over the given sites (order-sensitive: `mod` indexes this list).
    pub fn new(sites: Vec<SiteId>) -> UniformHash {
        assert!(!sites.is_empty(), "placer needs at least one site");
        UniformHash { sites }
    }
}

impl UniformHash {
    #[inline]
    fn owner_of_hash(&self, h: u64) -> SiteId {
        self.sites[(h % self.sites.len() as u64) as usize]
    }
}

impl SitePlacer for UniformHash {
    fn owner(&self, key: &str) -> SiteId {
        self.owner_of_hash(fx_hash_str(key))
    }

    fn owner_key(&self, key: &Key) -> SiteId {
        self.owner_of_hash(key.hash64())
    }

    fn sites(&self) -> Vec<SiteId> {
        self.sites.clone()
    }
}

/// Consistent-hash ring with virtual nodes.
#[derive(Clone, Debug)]
pub struct ConsistentRing {
    ring: BTreeMap<u64, SiteId>,
    vnodes: usize,
    members: Vec<SiteId>,
}

impl ConsistentRing {
    /// Build a ring with `vnodes` virtual nodes per site (128 is a good
    /// default: load imbalance stays within a few percent).
    pub fn new(sites: Vec<SiteId>, vnodes: usize) -> ConsistentRing {
        assert!(!sites.is_empty(), "placer needs at least one site");
        assert!(vnodes > 0, "need at least one virtual node per site");
        let mut ring = ConsistentRing {
            ring: BTreeMap::new(),
            vnodes,
            members: Vec::new(),
        };
        for s in sites {
            ring.add_site(s);
        }
        ring
    }

    /// Add a site (no-op if present). Only ~1/n of keys move to it.
    pub fn add_site(&mut self, site: SiteId) {
        if self.members.contains(&site) {
            return;
        }
        self.members.push(site);
        for v in 0..self.vnodes {
            self.ring.insert(vnode_hash(site, v), site);
        }
    }

    /// Remove a site (no-op if absent). Its keys redistribute to the
    /// remaining sites. Panics if it would empty the ring.
    pub fn remove_site(&mut self, site: SiteId) {
        if !self.members.contains(&site) {
            return;
        }
        assert!(self.members.len() > 1, "cannot remove the last site");
        self.members.retain(|&s| s != site);
        for v in 0..self.vnodes {
            self.ring.remove(&vnode_hash(site, v));
        }
    }

    /// Number of member sites.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ring has no members (never true via the public API).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

fn vnode_hash(site: SiteId, vnode: usize) -> u64 {
    fx_hash_str(&format!("site-{}#vnode-{}", site.0, vnode))
}

impl ConsistentRing {
    fn owner_of_hash(&self, h: u64) -> SiteId {
        assert!(!self.ring.is_empty(), "placer needs at least one site");
        // First vnode at or after h, wrapping around.
        match self.ring.range(h..).next() {
            Some((_, &site)) => site,
            None => *self.ring.values().next().expect("ring non-empty"),
        }
    }
}

impl SitePlacer for ConsistentRing {
    fn owner(&self, key: &str) -> SiteId {
        self.owner_of_hash(fx_hash_str(key))
    }

    fn owner_key(&self, key: &Key) -> SiteId {
        self.owner_of_hash(key.hash64())
    }

    fn sites(&self) -> Vec<SiteId> {
        self.members.clone()
    }
}

/// Rendezvous (highest-random-weight) hashing.
#[derive(Clone, Debug)]
pub struct Rendezvous {
    sites: Vec<SiteId>,
}

impl Rendezvous {
    /// Place over the given sites.
    pub fn new(sites: Vec<SiteId>) -> Rendezvous {
        assert!(!sites.is_empty(), "placer needs at least one site");
        Rendezvous { sites }
    }

    /// Add a site (no-op if present).
    pub fn add_site(&mut self, site: SiteId) {
        if !self.sites.contains(&site) {
            self.sites.push(site);
        }
    }

    /// Remove a site; panics if it would leave no sites.
    pub fn remove_site(&mut self, site: SiteId) {
        assert!(
            self.sites.len() > 1 || !self.sites.contains(&site),
            "cannot remove the last site"
        );
        self.sites.retain(|&s| s != site);
    }
}

impl Rendezvous {
    fn owner_of_hash(&self, kh: u64) -> SiteId {
        self.sites
            .iter()
            .copied()
            .max_by_key(|s| {
                // Combine key and site hashes through a strong mixer.
                geometa_sim::rng::mix(kh ^ fx_hash_str(&format!("rdv-{}", s.0)))
            })
            .expect("placer non-empty")
    }
}

impl SitePlacer for Rendezvous {
    fn owner(&self, key: &str) -> SiteId {
        self.owner_of_hash(fx_hash_str(key))
    }

    fn owner_key(&self, key: &Key) -> SiteId {
        self.owner_of_hash(key.hash64())
    }

    fn sites(&self) -> Vec<SiteId> {
        self.sites.clone()
    }
}

/// Fraction of `keys` whose owner differs between two placers (used to
/// quantify migration cost on membership change).
pub fn migration_fraction<A: SitePlacer + ?Sized, B: SitePlacer + ?Sized>(
    before: &A,
    after: &B,
    keys: &[String],
) -> f64 {
    if keys.is_empty() {
        return 0.0;
    }
    let moved = keys
        .iter()
        .filter(|k| before.owner(k) != after.owner(k))
        .count();
    moved as f64 / keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_sites() -> Vec<SiteId> {
        (0..4).map(SiteId).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("file{i}")).collect()
    }

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let p = UniformHash::new(four_sites());
        for k in keys(1000) {
            let o = p.owner(&k);
            assert_eq!(o, p.owner(&k));
            assert!(o.0 < 4);
        }
    }

    #[test]
    fn uniform_balances_load() {
        let p = UniformHash::new(four_sites());
        let mut counts = [0u32; 4];
        for k in keys(40_000) {
            counts[p.owner(&k).index()] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn ring_balances_load_with_vnodes() {
        let p = ConsistentRing::new(four_sites(), 128);
        let mut counts = [0u32; 4];
        for k in keys(40_000) {
            counts[p.owner(&k).index()] += 1;
        }
        for &c in &counts {
            // vnodes keep imbalance modest.
            assert!((7_000..13_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn ring_add_site_moves_about_one_fifth() {
        let ks = keys(20_000);
        let before = ConsistentRing::new(four_sites(), 128);
        let mut after = before.clone();
        after.add_site(SiteId(4));
        let frac = migration_fraction(&before, &after, &ks);
        // Ideal is 1/5 = 0.2; allow slack for vnode variance.
        assert!((0.12..0.30).contains(&frac), "migration fraction {frac}");
        // Every moved key must have moved TO the new site.
        for k in &ks {
            if before.owner(k) != after.owner(k) {
                assert_eq!(after.owner(k), SiteId(4));
            }
        }
    }

    #[test]
    fn ring_remove_site_only_moves_its_keys() {
        let ks = keys(20_000);
        let before = ConsistentRing::new(four_sites(), 128);
        let mut after = before.clone();
        after.remove_site(SiteId(2));
        for k in &ks {
            let b = before.owner(k);
            let a = after.owner(k);
            if b != SiteId(2) {
                assert_eq!(a, b, "key {k} moved although its owner survived");
            } else {
                assert_ne!(a, SiteId(2));
            }
        }
    }

    #[test]
    fn uniform_membership_change_reshuffles_most_keys() {
        // The known drawback that motivates the ring: adding one site to a
        // mod-n placer moves the vast majority of keys.
        let ks = keys(20_000);
        let before = UniformHash::new(four_sites());
        let after = UniformHash::new((0..5).map(SiteId).collect());
        let frac = migration_fraction(&before, &after, &ks);
        assert!(
            frac > 0.5,
            "mod-hash migration fraction {frac} suspiciously low"
        );
    }

    #[test]
    fn rendezvous_minimal_migration() {
        let ks = keys(20_000);
        let before = Rendezvous::new(four_sites());
        let mut after = before.clone();
        after.add_site(SiteId(4));
        let frac = migration_fraction(&before, &after, &ks);
        assert!((0.15..0.25).contains(&frac), "migration fraction {frac}");
        for k in &ks {
            if before.owner(k) != after.owner(k) {
                assert_eq!(after.owner(k), SiteId(4));
            }
        }
    }

    #[test]
    fn rendezvous_balances_load() {
        let p = Rendezvous::new(four_sites());
        let mut counts = [0u32; 4];
        for k in keys(40_000) {
            counts[p.owner(&k).index()] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn ring_add_remove_is_idempotent() {
        let mut r = ConsistentRing::new(four_sites(), 16);
        r.add_site(SiteId(2)); // already present
        assert_eq!(r.len(), 4);
        r.remove_site(SiteId(9)); // absent
        assert_eq!(r.len(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last site")]
    fn ring_refuses_to_empty() {
        let mut r = ConsistentRing::new(vec![SiteId(0)], 16);
        r.remove_site(SiteId(0));
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn uniform_requires_sites() {
        let _ = UniformHash::new(vec![]);
    }

    #[test]
    fn owner_key_agrees_with_owner_for_every_placer() {
        let placers: Vec<Box<dyn SitePlacer>> = vec![
            Box::new(UniformHash::new(four_sites())),
            Box::new(ConsistentRing::new(four_sites(), 64)),
            Box::new(Rendezvous::new(four_sites())),
        ];
        for p in &placers {
            for k in keys(500) {
                assert_eq!(
                    p.owner(&k),
                    p.owner_key(&Key::new(&k)),
                    "interned-key placement must match text placement"
                );
            }
        }
    }
}
