//! Operation plans: where a metadata read/write must go.
//!
//! A strategy does not execute operations itself; it produces *plans* that
//! any executor (the DES binding, the live threaded cluster, or an
//! in-process test harness) can carry out. This keeps the paper's policies
//! in exactly one place.

use geometa_sim::topology::SiteId;

/// Plan for publishing (writing) one metadata entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WritePlan {
    /// Registry instances that must acknowledge before the write counts as
    /// complete. Per the paper (§VII-B), "for writes, the completion is the
    /// moment when the assigned cache entry is successfully generated in
    /// the local datacenter" — so this is one site in every strategy.
    pub sync_targets: Vec<SiteId>,
    /// Registry instances updated *lazily* after completion (the paper's
    /// asynchronous propagation to replicas; §III-D).
    pub async_targets: Vec<SiteId>,
}

impl WritePlan {
    /// All sites eventually holding the entry under this plan.
    pub fn all_targets(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.sync_targets
            .iter()
            .chain(self.async_targets.iter())
            .copied()
    }

    /// Whether the plan writes to `site` at all.
    pub fn touches(&self, site: SiteId) -> bool {
        self.all_targets().any(|s| s == site)
    }
}

/// Plan for resolving (reading) one metadata entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadPlan {
    /// Registry instances to probe, in order, until one returns the entry.
    /// The decentralized-replicated strategy's "two-step hierarchical
    /// procedure" (§IV-D) is simply `[local, hash_owner]`.
    pub probes: Vec<SiteId>,
}

impl ReadPlan {
    /// A plan probing exactly one site.
    pub fn single(site: SiteId) -> ReadPlan {
        ReadPlan { probes: vec![site] }
    }

    /// Number of probes in the worst case.
    pub fn max_probes(&self) -> usize {
        self.probes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_targets_chains_sync_then_async() {
        let p = WritePlan {
            sync_targets: vec![SiteId(1)],
            async_targets: vec![SiteId(2), SiteId(3)],
        };
        let all: Vec<SiteId> = p.all_targets().collect();
        assert_eq!(all, vec![SiteId(1), SiteId(2), SiteId(3)]);
        assert!(p.touches(SiteId(2)));
        assert!(!p.touches(SiteId(0)));
    }

    #[test]
    fn single_read_plan() {
        let p = ReadPlan::single(SiteId(3));
        assert_eq!(p.probes, vec![SiteId(3)]);
        assert_eq!(p.max_probes(), 1);
    }
}
