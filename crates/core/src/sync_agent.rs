//! The synchronization agent of the replicated strategy (§IV-B).
//!
//! "A synchronization agent iteratively queries all registry instances for
//! updates, then synchronizes all metadata instances." The agent is a
//! *single*, centralized component — deliberately so, because the paper
//! shows it becoming the bottleneck beyond ~32 nodes (Fig. 7), which is
//! exactly what motivates the decentralized strategies.
//!
//! [`SyncAgentState`] is the transport-agnostic core: it tracks, per
//! registry instance, the logical timestamp up to which deltas have been
//! pulled, decides the polling order, and turns a pulled delta into the
//! pushes that bring every other instance up to date. The DES binding and
//! the live cluster both drive it.

use crate::entry::RegistryEntry;
use geometa_sim::topology::SiteId;
use std::collections::HashMap;

/// One propagation instruction: push `entries` to `target`.
#[derive(Clone, Debug)]
pub struct SyncPush {
    /// Destination registry instance.
    pub target: SiteId,
    /// Entries to absorb there.
    pub entries: Vec<RegistryEntry>,
}

/// Transport-agnostic state of the synchronization agent.
#[derive(Debug)]
pub struct SyncAgentState {
    sites: Vec<SiteId>,
    /// Timestamp up to which each instance's updates have been pulled.
    watermark: HashMap<SiteId, u64>,
    cycles: u64,
    entries_propagated: u64,
}

impl SyncAgentState {
    /// Create the agent over the replicated registry sites.
    pub fn new(sites: Vec<SiteId>) -> SyncAgentState {
        assert!(sites.len() >= 2, "sync agent needs at least two instances");
        let watermark = sites.iter().map(|&s| (s, 0u64)).collect();
        SyncAgentState {
            sites,
            watermark,
            cycles: 0,
            entries_propagated: 0,
        }
    }

    /// The sites the agent polls, in fixed order ("it sequentially queries
    /// the instances for updates").
    pub fn poll_order(&self) -> &[SiteId] {
        &self.sites
    }

    /// The `since` watermark to use when pulling a delta from `site`.
    pub fn watermark(&self, site: SiteId) -> u64 {
        self.watermark.get(&site).copied().unwrap_or(0)
    }

    /// Integrate a delta pulled from `source` (covering updates up to
    /// `up_to`); returns the pushes to every *other* instance.
    ///
    /// The watermark only advances to `up_to`, which the caller must set to
    /// the logical time at which the delta query executed — updates landing
    /// after that are picked up next cycle.
    pub fn integrate(
        &mut self,
        source: SiteId,
        delta: Vec<RegistryEntry>,
        up_to: u64,
    ) -> Vec<SyncPush> {
        let w = self.watermark.entry(source).or_insert(0);
        *w = (*w).max(up_to);
        if delta.is_empty() {
            return Vec::new();
        }
        self.entries_propagated += delta.len() as u64;
        self.sites
            .iter()
            .copied()
            .filter(|&s| s != source)
            .map(|target| SyncPush {
                target,
                entries: delta.clone(),
            })
            .collect()
    }

    /// Roll `site`'s watermark back to at most `to` (no-op if already
    /// lower). Drivers call this when a push derived from the site's
    /// delta could not be delivered: the next cycle re-pulls the same
    /// window and re-pushes everywhere (absorb is idempotent, so targets
    /// that did receive the first attempt are unharmed).
    pub fn rollback_watermark(&mut self, site: SiteId, to: u64) {
        if let Some(w) = self.watermark.get_mut(&site) {
            *w = (*w).min(to);
        }
    }

    /// Mark a full poll cycle complete.
    pub fn cycle_done(&mut self) {
        self.cycles += 1;
    }

    /// Completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total entries propagated (each counted once per pull, not per push).
    pub fn entries_propagated(&self) -> u64 {
        self.entries_propagated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;

    fn entry(name: &str, t: u64) -> RegistryEntry {
        RegistryEntry::new(
            name,
            1,
            FileLocation {
                site: SiteId(0),
                node: 0,
            },
            t,
        )
    }

    fn agent() -> SyncAgentState {
        SyncAgentState::new((0..4).map(SiteId).collect())
    }

    #[test]
    fn poll_order_is_stable() {
        let a = agent();
        assert_eq!(
            a.poll_order(),
            &[SiteId(0), SiteId(1), SiteId(2), SiteId(3)]
        );
    }

    #[test]
    fn integrate_pushes_to_all_others() {
        let mut a = agent();
        let pushes = a.integrate(SiteId(1), vec![entry("f", 5)], 10);
        let targets: Vec<SiteId> = pushes.iter().map(|p| p.target).collect();
        assert_eq!(targets, vec![SiteId(0), SiteId(2), SiteId(3)]);
        for p in &pushes {
            assert_eq!(p.entries.len(), 1);
        }
    }

    #[test]
    fn empty_delta_produces_no_pushes_but_advances_watermark() {
        let mut a = agent();
        let pushes = a.integrate(SiteId(2), vec![], 42);
        assert!(pushes.is_empty());
        assert_eq!(a.watermark(SiteId(2)), 42);
    }

    #[test]
    fn watermark_never_regresses() {
        let mut a = agent();
        a.integrate(SiteId(0), vec![], 100);
        a.integrate(SiteId(0), vec![], 50);
        assert_eq!(a.watermark(SiteId(0)), 100);
    }

    #[test]
    fn watermarks_are_per_site() {
        let mut a = agent();
        a.integrate(SiteId(0), vec![], 10);
        a.integrate(SiteId(1), vec![], 20);
        assert_eq!(a.watermark(SiteId(0)), 10);
        assert_eq!(a.watermark(SiteId(1)), 20);
        assert_eq!(a.watermark(SiteId(2)), 0);
    }

    #[test]
    fn propagation_counter_counts_pulled_entries_once() {
        let mut a = agent();
        a.integrate(SiteId(0), vec![entry("a", 1), entry("b", 2)], 5);
        assert_eq!(a.entries_propagated(), 2);
        a.cycle_done();
        assert_eq!(a.cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "at least two instances")]
    fn single_site_agent_is_rejected() {
        let _ = SyncAgentState::new(vec![SiteId(0)]);
    }

    #[test]
    fn rollback_lowers_but_never_raises() {
        let mut a = agent();
        a.integrate(SiteId(0), vec![], 100);
        a.rollback_watermark(SiteId(0), 40);
        assert_eq!(a.watermark(SiteId(0)), 40);
        a.rollback_watermark(SiteId(0), 90);
        assert_eq!(a.watermark(SiteId(0)), 40, "rollback must not advance");
    }
}
