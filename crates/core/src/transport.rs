//! Transport abstraction between metadata clients and registry instances.
//!
//! The strategy layer produces *plans*; a transport executes individual
//! RPCs. Four transports exist in the project:
//!
//! * [`InProcessTransport`] (here) — direct function calls into registry
//!   instances, zero latency. Used by unit tests, examples and as the
//!   building block of the others.
//! * `geometa_core::live` — real threads and channels with injected WAN
//!   delay.
//! * `geometa_net` — framed TCP sockets (pooling, reconnecting client).
//! * `geometa_experiments::simbind` — the discrete-event simulation
//!   binding.

use crate::protocol::{RegistryRequest, RegistryResponse};
use crate::registry::RegistryInstance;
use crate::MetaError;
use geometa_sim::topology::SiteId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Synchronous request/response transport to registry instances.
pub trait RegistryTransport: Send + Sync {
    /// Blocking RPC to the registry instance at `target`.
    fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse;

    /// Fire-and-forget send (the lazy propagation path).
    ///
    /// **Contract:** `cast` must not block on the target's flight latency
    /// or service time — a slow or unreachable target cannot be allowed to
    /// stall the caller's lazy path. There is deliberately *no* default
    /// implementation: an earlier default ("blocking `call`, drop the
    /// response") silently violated this for any transport with real
    /// latency, so every transport now states its delivery mechanism
    /// explicitly (in-process: serve inline — zero latency; live: delay
    /// line; net: background cast pump).
    fn cast(&self, target: SiteId, req: RegistryRequest);

    /// Monotonic logical clock in microseconds (stamped onto writes).
    fn now_micros(&self) -> u64;

    /// Sites reachable through this transport.
    fn sites(&self) -> Vec<SiteId>;

    /// Fetch the cluster's current membership `(epoch, members)`, for
    /// clients retiring a stale placement plan after a
    /// [`MetaError::WrongEpoch`] rejection. Transports that have no
    /// membership epochs (in-process, channels — their controller is
    /// shared with the server, so plans are never stale) return `None`.
    fn refresh_membership(&self) -> Option<(u64, Vec<SiteId>)> {
        None
    }
}

/// Zero-latency transport: registry instances in the same process.
pub struct InProcessTransport {
    registries: HashMap<SiteId, Arc<RegistryInstance>>,
    clock: AtomicU64,
}

impl InProcessTransport {
    /// Create registry instances for every given site.
    pub fn new(sites: &[SiteId], shards: usize) -> InProcessTransport {
        InProcessTransport {
            registries: sites
                .iter()
                .map(|&s| (s, Arc::new(RegistryInstance::new(s, shards))))
                .collect(),
            clock: AtomicU64::new(1),
        }
    }

    /// Direct handle to a site's registry instance.
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.registries.get(&site)
    }

    /// Serve one request against one instance — shared by every transport
    /// implementation so registry semantics live in exactly one place.
    pub fn serve(registry: &RegistryInstance, req: RegistryRequest, now: u64) -> RegistryResponse {
        match req {
            RegistryRequest::Get { key } => match registry.get_key(&key) {
                Ok(entry) => RegistryResponse::Found { entry },
                Err(error) => RegistryResponse::Error { error },
            },
            RegistryRequest::Put { entry } => match registry.put(&entry, now) {
                Ok(_) => RegistryResponse::Ack,
                Err(error) => RegistryResponse::Error { error },
            },
            RegistryRequest::Absorb { entries } => match registry.absorb_batch(&entries) {
                Ok(_) => RegistryResponse::Ack,
                Err(error) => RegistryResponse::Error { error },
            },
            RegistryRequest::Remove { key } => match registry.remove_key(&key) {
                Ok(()) => RegistryResponse::Ack,
                Err(error) => RegistryResponse::Error { error },
            },
            RegistryRequest::DeltaPull { since } => RegistryResponse::Delta {
                entries: registry.delta_since(since),
            },
            // Ops requests are answered by the runtime (`ServiceCore`),
            // which owns membership and WALs; a bare registry instance
            // has neither.
            RegistryRequest::Status | RegistryRequest::Reconfigure { .. } => {
                RegistryResponse::Error {
                    error: MetaError::Unavailable,
                }
            }
        }
    }
}

impl RegistryTransport for InProcessTransport {
    fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
        let now = self.now_micros();
        match self.registries.get(&target) {
            Some(r) => Self::serve(r, req, now),
            None => RegistryResponse::Error {
                error: MetaError::Unavailable,
            },
        }
    }

    /// Zero-latency fire-and-forget: serve inline, drop the response. With
    /// no network in the way there is nothing to defer — the registry op
    /// itself is the only cost, so the caller cannot be stalled by flight
    /// latency.
    fn cast(&self, target: SiteId, req: RegistryRequest) {
        if let Some(r) = self.registries.get(&target) {
            let _ = Self::serve(r, req, self.now_micros());
        }
    }

    fn now_micros(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn sites(&self) -> Vec<SiteId> {
        let mut s: Vec<SiteId> = self.registries.keys().copied().collect();
        s.sort();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{FileLocation, RegistryEntry};

    fn transport() -> InProcessTransport {
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        InProcessTransport::new(&sites, 8)
    }

    fn entry(name: &str) -> RegistryEntry {
        RegistryEntry::new(
            name,
            10,
            FileLocation {
                site: SiteId(0),
                node: 0,
            },
            0,
        )
    }

    #[test]
    fn put_and_get_through_transport() {
        let t = transport();
        let resp = t.call(SiteId(1), RegistryRequest::Put { entry: entry("f") });
        resp.into_ack().unwrap();
        let found = t
            .call(SiteId(1), RegistryRequest::Get { key: "f".into() })
            .into_entry()
            .unwrap();
        assert_eq!(found.name, "f");
        // Other sites don't have it — partitioned by construction.
        let miss = t.call(SiteId(2), RegistryRequest::Get { key: "f".into() });
        assert_eq!(miss.into_entry(), Err(MetaError::NotFound));
    }

    #[test]
    fn unknown_site_is_unavailable() {
        let t = transport();
        let resp = t.call(SiteId(9), RegistryRequest::Get { key: "f".into() });
        assert_eq!(resp.into_entry(), Err(MetaError::Unavailable));
    }

    #[test]
    fn delta_pull_round_trip() {
        let t = transport();
        t.call(SiteId(0), RegistryRequest::Put { entry: entry("a") })
            .into_ack()
            .unwrap();
        t.call(SiteId(0), RegistryRequest::Put { entry: entry("b") })
            .into_ack()
            .unwrap();
        match t.call(SiteId(0), RegistryRequest::DeltaPull { since: 0 }) {
            RegistryResponse::Delta { entries } => assert_eq!(entries.len(), 2),
            other => panic!("expected delta, got {other:?}"),
        }
    }

    #[test]
    fn absorb_merges_remotely() {
        let t = transport();
        t.call(
            SiteId(3),
            RegistryRequest::Absorb {
                entries: vec![entry("f")],
            },
        )
        .into_ack()
        .unwrap();
        let found = t
            .call(SiteId(3), RegistryRequest::Get { key: "f".into() })
            .into_entry()
            .unwrap();
        assert_eq!(found.name, "f");
    }

    #[test]
    fn clock_is_monotone() {
        let t = transport();
        let a = t.now_micros();
        let b = t.now_micros();
        assert!(b > a);
    }

    #[test]
    fn remove_via_transport() {
        let t = transport();
        t.call(SiteId(0), RegistryRequest::Put { entry: entry("f") })
            .into_ack()
            .unwrap();
        t.call(SiteId(0), RegistryRequest::Remove { key: "f".into() })
            .into_ack()
            .unwrap();
        let miss = t.call(SiteId(0), RegistryRequest::Get { key: "f".into() });
        assert_eq!(miss.into_entry(), Err(MetaError::NotFound));
    }
}
