//! The transport-generic service runtime.
//!
//! Every real deployment of the registry — threads + channels
//! ([`crate::live`]), TCP sockets (`geometa-net`), or any future backend
//! (UDS, real WAN) — needs the same machinery: registry instances per
//! site, a serving dispatch, tracked service threads, a delay line for
//! asynchronous propagation, sync-agent driving for the replicated
//! strategy, failure injection, and graceful shutdown. This module owns
//! all of it once; a deployment only supplies a [`ConnectionLayer`] — the
//! piece that moves `RegistryRequest`/`RegistryResponse` bytes between a
//! client and a site's server.
//!
//! Layering:
//!
//! ```text
//! StrategyClient<L::Transport>            (plans → RPCs)
//!         │ call / cast
//! L::Transport: RegistryTransport         (connection layer, client side)
//!         │ channel send / framed TCP / …
//! ConnectionLayer serving loops           (connection layer, server side)
//!         │ ServiceCore::serve
//! RegistryInstance                        (one per site; shared by sim,
//!                                          live and net deployments)
//! ```
//!
//! The DES binding (`geometa_experiments::simbind`) intentionally stays
//! outside: virtual time cannot run on real threads. Everything below the
//! transport — `RegistryInstance`, the strategies, `SyncAgentState` — is
//! the exact code the simulator drives, which is what makes live/net runs
//! comparable to simulated ones.

use crate::client::{ClientConfig, StrategyClient};
use crate::controller::{ArchitectureController, RING_VNODES};
use crate::entry::RegistryEntry;
use crate::hash::{ConsistentRing, SitePlacer};
use crate::protocol::{ReconfigureOp, RegistryRequest, RegistryResponse, SiteStatus};
use crate::rebalance::plan_rebalance;
use crate::registry::RegistryInstance;
use crate::strategy::StrategyKind;
use crate::sync_agent::SyncAgentState;
use crate::transport::{InProcessTransport, RegistryTransport};
use crate::wal::{FileWal, FsyncPolicy, MemWal, TornTail, WalError, WalSink};
use crate::MetaError;
use geometa_sim::rng::SplitMix64;
use geometa_sim::topology::{SiteId, Topology};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which write-ahead log backs each site's registry.
#[derive(Clone, Debug)]
pub enum WalConfig {
    /// No logging: writes live only in memory (pre-WAL behaviour).
    Disabled,
    /// In-memory log: identical append/replay semantics without I/O —
    /// the deterministic default for in-process and channel deployments.
    Memory,
    /// File-backed log under `data_dir/site-<n>/` with the given fsync
    /// policy. Existing state is recovered (snapshot + clean log tail
    /// replayed into the registries) before serving starts.
    File {
        /// Root directory; one subdirectory per site.
        data_dir: PathBuf,
        /// When appended records become durable.
        fsync: FsyncPolicy,
    },
}

/// Configuration shared by every runtime-backed deployment.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Site layout and latency matrix.
    pub topology: Topology,
    /// Which of the four strategies to run.
    pub kind: StrategyKind,
    /// Shards per registry cache.
    pub shards: usize,
    /// Real-time interval between sync-agent cycles (replicated strategy).
    pub sync_interval: Duration,
    /// Write-ahead logging behind every registry.
    pub wal: WalConfig,
    /// Appends between snapshot + log-truncation cycles.
    pub snapshot_every: u64,
    /// Initial member sites (placement targets). `None` means every
    /// topology site. A subset leaves the excluded sites' registries and
    /// serving loops running but out of the placement plan — they join
    /// later through [`ServiceCore::serve`]-level `Reconfigure`.
    pub members: Option<Vec<SiteId>>,
    /// Pause between rebalance transfer chunks, throttling background
    /// migration against foreground traffic.
    pub rebalance_throttle: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            topology: Topology::azure_4dc(),
            kind: StrategyKind::DhtLocalReplica,
            shards: 16,
            sync_interval: Duration::from_millis(5),
            wal: WalConfig::Memory,
            snapshot_every: 4096,
            members: None,
            rebalance_throttle: Duration::from_micros(500),
        }
    }
}

/// What one site's restart recovered from its WAL.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The site that recovered.
    pub site: SiteId,
    /// Entries restored from the snapshot.
    pub snapshot_entries: usize,
    /// Log records replayed on top of the snapshot.
    pub replayed: usize,
    /// A torn log tail that was truncated during recovery, if any.
    pub torn: Option<TornTail>,
}

/// Sync-agent health counters, surfaced through
/// [`ServiceCore::sync_stats`].
#[derive(Debug, Default)]
pub struct SyncAgentStats {
    /// Delta pulls that returned an error (the site backs off).
    pub pull_failures: AtomicU64,
    /// Absorb pushes that were not acked (watermark rolled back).
    pub push_failures: AtomicU64,
    /// Cycles where a backed-off site was skipped.
    pub backoff_skips: AtomicU64,
}

/// Point-in-time copy of [`SyncAgentStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncAgentStatsSnapshot {
    /// See [`SyncAgentStats::pull_failures`].
    pub pull_failures: u64,
    /// See [`SyncAgentStats::push_failures`].
    pub push_failures: u64,
    /// See [`SyncAgentStats::backoff_skips`].
    pub backoff_skips: u64,
}

impl SyncAgentStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> SyncAgentStatsSnapshot {
        SyncAgentStatsSnapshot {
            pull_failures: self.pull_failures.load(Ordering::Relaxed),
            push_failures: self.push_failures.load(Ordering::Relaxed),
            backoff_skips: self.backoff_skips.load(Ordering::Relaxed),
        }
    }
}

/// A deferred job executed by the delay line.
struct DelayedJob {
    due: Instant,
    seq: u64,
    job: Box<dyn FnOnce() + Send>,
}

impl PartialEq for DelayedJob {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedJob {}
impl PartialOrd for DelayedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (due, seq).
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Executes closures at deadlines; the asynchronous-propagation spine.
pub struct DelayLine {
    heap: Mutex<BinaryHeap<DelayedJob>>,
    cond: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
}

impl DelayLine {
    /// A fresh delay line (the runtime spawns its worker).
    pub fn new() -> Arc<DelayLine> {
        Arc::new(DelayLine {
            heap: Mutex::new(BinaryHeap::new()),
            cond: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Schedule `job` to run after `delay`.
    pub fn schedule(&self, delay: Duration, job: Box<dyn FnOnce() + Send>) {
        let due = Instant::now() + delay;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().push(DelayedJob { due, seq, job });
        self.cond.notify_one();
    }

    /// The worker loop: pops jobs in deadline order until [`Self::stop`].
    pub fn run_worker(self: &Arc<Self>) {
        loop {
            let job = {
                let mut heap = self.heap.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    match heap.peek() {
                        None => {
                            self.cond.wait(&mut heap);
                        }
                        Some(top) => {
                            let now = Instant::now();
                            if top.due <= now {
                                break heap.pop().expect("peeked job exists");
                            }
                            let due = top.due;
                            self.cond.wait_until(&mut heap, due);
                        }
                    }
                }
            };
            (job.job)();
        }
    }

    /// Stop the worker; pending jobs are dropped.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cond.notify_all();
    }
}

/// Everything a connection layer serves from: the registry instances, the
/// strategy controller, the logical clock, the delay line and the
/// shutdown flag. Shared (via `Arc`) between the runtime, the layer's
/// serving threads, and client transports.
pub struct ServiceCore {
    topology: Arc<Topology>,
    registries: HashMap<SiteId, Arc<RegistryInstance>>,
    wals: HashMap<SiteId, Arc<dyn WalSink>>,
    snapshot_every: u64,
    recovery: Vec<RecoveryReport>,
    controller: Arc<ArchitectureController>,
    sync_stats: Arc<SyncAgentStats>,
    delay: Arc<DelayLine>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    membership: Mutex<MembershipState>,
    conn_counts: HashMap<SiteId, AtomicU32>,
    rebalance_throttle: Duration,
    background: Mutex<Vec<JoinHandle<()>>>,
    me: Weak<ServiceCore>,
}

/// Caller-owned scratch for [`ServiceCore::serve_batch_into`]: the
/// batch's hoisted read run and its pending-WAL write run. The server
/// reactor keeps one per connection — cleared between batches, never
/// shrunk — so batching itself allocates nothing at steady state.
#[derive(Default)]
pub struct BatchScratch {
    /// Interned keys of every `Get` in the batch, hoisted for one
    /// grouped read.
    gets: Vec<geometa_cache::Key>,
    /// `out` index each hoisted get's response is restored to.
    get_slots: Vec<usize>,
    /// Acked writes awaiting the batched WAL append.
    writes: Vec<RegistryRequest>,
    /// `out` index of each pending write's ack (demoted to
    /// `Unavailable` if the batch append fails).
    write_slots: Vec<usize>,
}

impl BatchScratch {
    fn clear(&mut self) {
        self.gets.clear();
        self.get_slots.clear();
        self.writes.clear();
        self.write_slots.clear();
    }
}

/// Versioned member set plus rebalance bookkeeping, guarded by one lock.
struct MembershipState {
    /// Bumped on every applied join/leave; clients carrying an older
    /// epoch are rejected with [`MetaError::WrongEpoch`] by the net layer.
    epoch: u64,
    /// Current placement targets, sorted by id.
    members: Vec<SiteId>,
    /// A reconfigure transfer is in flight (concurrent ones are refused).
    rebalancing: bool,
    /// Entries moved by the most recently completed reconfigure.
    last_moved: u64,
}

impl ServiceCore {
    fn new(config: &RuntimeConfig) -> Result<Arc<ServiceCore>, WalError> {
        let topology = Arc::new(config.topology.clone());
        let sites: Vec<SiteId> = topology.site_ids().collect();
        let registries: HashMap<SiteId, Arc<RegistryInstance>> = sites
            .iter()
            .map(|&s| (s, Arc::new(RegistryInstance::new(s, config.shards))))
            .collect();
        let mut wals: HashMap<SiteId, Arc<dyn WalSink>> = HashMap::new();
        let mut recovery = Vec::new();
        for &site in &sites {
            match &config.wal {
                WalConfig::Disabled => {}
                WalConfig::Memory => {
                    wals.insert(site, Arc::new(MemWal::new()));
                }
                WalConfig::File { data_dir, fsync } => {
                    let dir = data_dir.join(format!("site-{}", site.0));
                    let (wal, rec) = FileWal::open(&dir, *fsync)?;
                    if !rec.is_empty() || rec.torn.is_some() {
                        let registry = &registries[&site];
                        for entry in &rec.entries {
                            let _ = registry.absorb(entry);
                        }
                        for record in &rec.tail {
                            let _ = InProcessTransport::serve(
                                registry,
                                record.req.clone(),
                                record.now_micros,
                            );
                        }
                        recovery.push(RecoveryReport {
                            site,
                            snapshot_entries: rec.entries.len(),
                            replayed: rec.tail.len(),
                            torn: rec.torn,
                        });
                    }
                    wals.insert(site, Arc::new(wal));
                }
            }
        }
        let mut members = match &config.members {
            None => sites.clone(),
            Some(m) => {
                assert!(
                    m.iter().all(|s| registries.contains_key(s)),
                    "initial members must be topology sites"
                );
                m.clone()
            }
        };
        members.sort();
        members.dedup();
        assert!(!members.is_empty(), "need at least one member site");
        let conn_counts = sites.iter().map(|&s| (s, AtomicU32::new(0))).collect();
        let controller = Arc::new(ArchitectureController::with_kind(
            config.kind,
            members.clone(),
        ));
        Ok(Arc::new_cyclic(|me| ServiceCore {
            topology,
            registries,
            wals,
            snapshot_every: config.snapshot_every.max(1),
            recovery,
            controller,
            sync_stats: Arc::new(SyncAgentStats::default()),
            delay: DelayLine::new(),
            epoch: Instant::now(),
            shutdown: Arc::new(AtomicBool::new(false)),
            membership: Mutex::new(MembershipState {
                epoch: 0,
                members,
                rebalancing: false,
                last_moved: 0,
            }),
            conn_counts,
            rebalance_throttle: config.rebalance_throttle,
            background: Mutex::new(Vec::new()),
            me: me.clone(),
        }))
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The strategy controller (runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        &self.controller
    }

    /// The shared delay line (asynchronous propagation).
    pub fn delay_line(&self) -> &Arc<DelayLine> {
        &self.delay
    }

    /// Monotonic logical clock in microseconds since runtime start.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Reusable scratch for [`ServiceCore::serve_batch_into`]: the hoisted
    /// read run and the pending-WAL write run live here between batches,
    /// cleared but never shrunk, so steady-state batching is alloc-free.
    pub fn new_batch_scratch(&self) -> BatchScratch {
        BatchScratch::default()
    }

    /// Whether shutdown has begun (serving loops poll this).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.registries.get(&site)
    }

    /// Serve one request against `site`'s registry — the single dispatch
    /// every connection layer calls, so registry semantics live in exactly
    /// one place ([`InProcessTransport::serve`]).
    ///
    /// Successful writes are appended to the site's WAL *before the ack
    /// is returned*: with a file sink the append blocks until the record
    /// is durable per its [`FsyncPolicy`], so an acked write survives a
    /// process kill. A WAL append failure converts the ack into
    /// `Unavailable` — the write may exist in memory, but the durability
    /// contract ("acked ⇒ recoverable") is never weakened silently.
    pub fn serve(&self, site: SiteId, req: RegistryRequest) -> RegistryResponse {
        // Ops requests are answered by the runtime itself: membership and
        // WALs live here, not in the registry.
        match req {
            RegistryRequest::Status => return self.status_response(site),
            RegistryRequest::Reconfigure { op, site: target } => {
                return self.start_reconfigure(op, target)
            }
            _ => {}
        }
        let Some(r) = self.registries.get(&site) else {
            return RegistryResponse::Error {
                error: MetaError::Unavailable,
            };
        };
        let wal = self.wals.get(&site).filter(|_| req.is_write());
        let logged = wal.map(|_| req.clone());
        let now = self.now_micros();
        let resp = InProcessTransport::serve(r, req, now);
        if let (Some(wal), Some(req), RegistryResponse::Ack) = (wal, logged, &resp) {
            if let Err(e) = wal.append(&req, now) {
                eprintln!("geometa: wal append failed at site {}: {e}", site.0);
                return RegistryResponse::Error {
                    error: MetaError::Unavailable,
                };
            }
            if wal.records_since_snapshot() >= self.snapshot_every {
                let registry = Arc::clone(r);
                if let Err(e) = wal.install_snapshot(&mut || registry.all_entries()) {
                    // Snapshot failure is not fatal to the ack (the
                    // record is durable in the log); it is surfaced and
                    // retried at the next trigger.
                    eprintln!("geometa: wal snapshot failed at site {}: {e}", site.0);
                }
            }
        }
        resp
    }

    /// Serve an ordered batch of requests against `site`'s registry,
    /// responses in request order. Convenience wrapper over
    /// [`Self::serve_batch_into`] for callers without a reusable scratch.
    pub fn serve_batch(&self, site: SiteId, reqs: Vec<RegistryRequest>) -> Vec<RegistryResponse> {
        let mut reqs = reqs;
        let mut out = Vec::with_capacity(reqs.len());
        let mut scratch = BatchScratch::default();
        self.serve_batch_into(site, &mut reqs, &mut out, &mut scratch);
        out
    }

    /// Serve a batch, draining `reqs` and appending one response per
    /// request to `out` (request order). The caller owns every buffer —
    /// the server reactor keeps `reqs`, `out` and `scratch` per
    /// connection, so a steady-state batch performs no allocation for
    /// the batching itself.
    ///
    /// *All* of the batch's `Get`s — not just consecutive runs — are
    /// sort-grouped into one [`RegistryInstance::multi_get_keys`] call
    /// (one shard-lock acquisition per shard group), with responses
    /// restored to request order. Hoisting reads past writes is a valid
    /// linearization because the requests of one batch are concurrent:
    /// every caller has at most one call in flight, so no two requests
    /// in a batch are ordered by the same session.
    ///
    /// Acked writes are appended to the WAL as **one batch** (one lock,
    /// one contiguous seq range, one group-commit wait) after serving;
    /// responses only leave this function after that append returns, so
    /// the acked ⇒ durable contract is unchanged. If the batch append
    /// fails, every acked write in the batch is converted to
    /// `Unavailable` — conservative for records that did reach the log,
    /// but never the reverse.
    // geometa-hot
    pub fn serve_batch_into(
        &self,
        site: SiteId,
        reqs: &mut Vec<RegistryRequest>,
        out: &mut Vec<RegistryResponse>,
        scratch: &mut BatchScratch,
    ) {
        let Some(r) = self.registries.get(&site) else {
            for _ in reqs.drain(..) {
                out.push(RegistryResponse::Error {
                    error: MetaError::Unavailable,
                });
            }
            return;
        };
        let wal = self.wals.get(&site);
        let now = self.now_micros();
        scratch.clear();
        for req in reqs.drain(..) {
            match req {
                RegistryRequest::Get { key } => {
                    scratch.get_slots.push(out.len());
                    scratch.gets.push(key);
                    // Placeholder; overwritten by the grouped read below.
                    out.push(RegistryResponse::Ack);
                }
                RegistryRequest::Status => out.push(self.status_response(site)),
                RegistryRequest::Reconfigure { op, site: target } => {
                    out.push(self.start_reconfigure(op, target))
                }
                req => {
                    let logged = wal.filter(|_| req.is_write()).map(|_| req.clone());
                    let resp = InProcessTransport::serve(r, req, now);
                    if let (Some(req), RegistryResponse::Ack) = (logged, &resp) {
                        scratch.write_slots.push(out.len());
                        scratch.writes.push(req);
                    }
                    out.push(resp);
                }
            }
        }
        match scratch.gets.len() {
            0 => {}
            1 => {
                out[scratch.get_slots[0]] = match r.get_key(&scratch.gets[0]) {
                    Ok(entry) => RegistryResponse::Found { entry },
                    Err(error) => RegistryResponse::Error { error },
                };
            }
            _ => {
                let results = r.multi_get_keys(&scratch.gets);
                for (&slot, res) in scratch.get_slots.iter().zip(results) {
                    out[slot] = match res {
                        Ok(entry) => RegistryResponse::Found { entry },
                        Err(error) => RegistryResponse::Error { error },
                    };
                }
            }
        }
        if let Some(wal) = wal {
            if !scratch.writes.is_empty() {
                if let Err(e) = wal.append_batch(&scratch.writes, now) {
                    eprintln!("geometa: wal append failed at site {}: {e}", site.0);
                    for &slot in &scratch.write_slots {
                        out[slot] = RegistryResponse::Error {
                            error: MetaError::Unavailable,
                        };
                    }
                } else if wal.records_since_snapshot() >= self.snapshot_every {
                    let registry = Arc::clone(r);
                    if let Err(e) = wal.install_snapshot(&mut || registry.all_entries()) {
                        // Snapshot failure is not fatal to the acks (the
                        // records are durable in the log); it is surfaced
                        // and retried at the next trigger.
                        eprintln!("geometa: wal snapshot failed at site {}: {e}", site.0);
                    }
                }
            }
        }
        scratch.clear();
    }

    /// Serve a run of reads addressed by *borrowed* key text — the
    /// reactor's zero-copy fast path, where keys are `&str` views into
    /// the connection's read buffer and no [`geometa_cache::Key`] is
    /// ever interned. Appends one response per key, in order. A single
    /// key probes the store directly (no allocation on a miss); two or
    /// more share shard locks through the grouped batch read.
    // geometa-hot
    pub fn serve_gets(&self, site: SiteId, keys: &[&str], out: &mut Vec<RegistryResponse>) {
        let Some(r) = self.registries.get(&site) else {
            for _ in keys {
                out.push(RegistryResponse::Error {
                    error: MetaError::Unavailable,
                });
            }
            return;
        };
        match keys.len() {
            0 => {}
            1 => out.push(match r.get(keys[0]) {
                Ok(entry) => RegistryResponse::Found { entry },
                Err(error) => RegistryResponse::Error { error },
            }),
            _ => {
                for res in r.multi_get(keys) {
                    out.push(match res {
                        Ok(entry) => RegistryResponse::Found { entry },
                        Err(error) => RegistryResponse::Error { error },
                    });
                }
            }
        }
    }

    /// The site's write-ahead log, when the deployment configured one.
    pub fn wal(&self, site: SiteId) -> Option<&Arc<dyn WalSink>> {
        self.wals.get(&site)
    }

    /// What each site recovered from disk at startup (empty for fresh
    /// starts and non-file WALs).
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.recovery
    }

    /// Sync-agent health counters (zero when no agent runs).
    pub fn sync_stats(&self) -> SyncAgentStatsSnapshot {
        self.sync_stats.snapshot()
    }

    /// Fault injection: kill `site`'s primary cache mid-traffic. The
    /// serving loops keep running; the next operation drives the HaCache
    /// primary→replica promotion. Returns whether the site hosts a
    /// registry.
    pub fn fail_primary(&self, site: SiteId) -> bool {
        match self.registries.get(&site) {
            Some(r) => {
                r.fail_primary();
                true
            }
            None => false,
        }
    }

    /// Current membership `(epoch, members)`.
    pub fn membership(&self) -> (u64, Vec<SiteId>) {
        let m = self.membership.lock();
        (m.epoch, m.members.clone())
    }

    /// Current membership epoch (what net frames are checked against).
    pub fn membership_epoch(&self) -> u64 {
        self.membership.lock().epoch
    }

    /// Connection accounting: the net layer's reactor reports every
    /// accepted connection here so `Status` can surface it.
    pub fn conn_opened(&self, site: SiteId) {
        if let Some(c) = self.conn_counts.get(&site) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// See [`Self::conn_opened`].
    pub fn conn_closed(&self, site: SiteId) {
        if let Some(c) = self.conn_counts.get(&site) {
            c.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Answer a `Status` request for `site`.
    fn status_response(&self, site: SiteId) -> RegistryResponse {
        let (epoch, members, rebalancing, last_moved) = {
            let m = self.membership.lock();
            (m.epoch, m.members.clone(), m.rebalancing, m.last_moved)
        };
        RegistryResponse::Status {
            status: SiteStatus {
                site,
                epoch,
                members,
                wal_seq: self.wals.get(&site).map_or(0, |w| w.next_seq()),
                entries: self.registries.get(&site).map_or(0, |r| r.len() as u64),
                conns: self
                    .conn_counts
                    .get(&site)
                    .map_or(0, |c| c.load(Ordering::Relaxed)),
                rebalancing,
                last_moved,
            },
        }
    }

    /// Validate and launch a membership change. `Ack` means *accepted*:
    /// the transfer runs on a background thread (joined at shutdown);
    /// callers poll `Status` for the epoch flip. A second `Reconfigure`
    /// while one is in flight is refused with `Contention`; an invalid
    /// target (unknown site, join of a member, leave of a non-member or
    /// of the last member) with `Unavailable`.
    fn start_reconfigure(&self, op: ReconfigureOp, target: SiteId) -> RegistryResponse {
        let refuse = |error| RegistryResponse::Error { error };
        let new_members = {
            let mut m = self.membership.lock();
            if m.rebalancing {
                return refuse(MetaError::Contention);
            }
            let next = match op {
                ReconfigureOp::Join => {
                    if !self.registries.contains_key(&target) || m.members.contains(&target) {
                        return refuse(MetaError::Unavailable);
                    }
                    let mut n = m.members.clone();
                    n.push(target);
                    n.sort();
                    n
                }
                ReconfigureOp::Leave | ReconfigureOp::Drain => {
                    if !m.members.contains(&target) || m.members.len() <= 1 {
                        return refuse(MetaError::Unavailable);
                    }
                    m.members.iter().copied().filter(|&s| s != target).collect()
                }
            };
            m.rebalancing = true;
            next
        };
        let Some(core) = self.me.upgrade() else {
            // Only reachable while the core is being torn down.
            self.membership.lock().rebalancing = false;
            return refuse(MetaError::Unavailable);
        };
        let handle =
            // geometa-lint: allow(untracked-thread) tracked through ServiceCore::background; ServiceRuntime::shutdown joins these after the serving threads
            std::thread::Builder::new()
                .name(format!("reconfigure-{}", target.0))
                .spawn(move || core.run_reconfigure(op, new_members))
                .expect("spawn reconfigure thread");
        self.background.lock().push(handle);
        RegistryResponse::Ack
    }

    /// Drive one membership change end to end (background thread).
    ///
    /// Two-pass transfer: pass 1 copies every entry whose owner changes
    /// to its new site while the *old* epoch keeps serving writes; then
    /// the epoch, member list and strategy flip atomically (stale clients
    /// start bouncing with [`MetaError::WrongEpoch`]); pass 2 re-plans
    /// and moves the stragglers written to old owners during pass 1.
    /// `Drain` is pass 1 without the flip — a copy-ahead warm-up that
    /// makes the later `Leave` near-instant.
    fn run_reconfigure(&self, op: ReconfigureOp, new_members: Vec<SiteId>) {
        let old_members = self.membership.lock().members.clone();
        let kind = self.controller.kind();
        let before = rebalance_placer(kind, &old_members);
        let after = rebalance_placer(kind, &new_members);
        let mut moved = self.transfer(&*before, &*after);
        if op != ReconfigureOp::Drain {
            {
                let mut m = self.membership.lock();
                m.epoch += 1;
                m.members = new_members.clone();
            }
            self.controller.switch_kind(kind, new_members);
            moved += self.transfer(&*before, &*after);
        }
        let mut m = self.membership.lock();
        m.last_moved = moved;
        m.rebalancing = false;
    }

    /// Copy every entry whose owner changed between two placements to its
    /// new site, through [`Self::serve`] so the target's WAL covers the
    /// migrated entries. Chunked like the sync agent's pushes and paused
    /// between chunks so foreground traffic keeps its shard locks.
    /// Returns the number of entries successfully moved; a failed chunk
    /// is skipped (the next pass or a re-issued reconfigure re-plans it —
    /// absorb is idempotent).
    fn transfer(&self, before: &dyn SitePlacer, after: &dyn SitePlacer) -> u64 {
        // The planner sees the old copies pass 1 left in place (absorb
        // never deletes), so re-planning would re-copy the whole set.
        // Skipping entries the target already holds at least as new keeps
        // pass 2 down to the stragglers — and keeps the total movement at
        // the placement bound, which the elasticity tests assert.
        let moves = plan_rebalance(before, after, &self.registries);
        let mut by_target: BTreeMap<SiteId, Vec<RegistryEntry>> = BTreeMap::new();
        for m in moves {
            let delivered = self
                .registries
                .get(&m.to)
                .and_then(|r| r.get(&m.entry.name).ok())
                .is_some_and(|held| held.created_at >= m.entry.created_at);
            if !delivered {
                by_target.entry(m.to).or_default().push(m.entry);
            }
        }
        let mut moved = 0u64;
        for (to, entries) in by_target {
            for chunk in entries.chunks(SYNC_PUSH_CHUNK) {
                if self.is_shutdown() {
                    return moved;
                }
                let resp = self.serve(
                    to,
                    RegistryRequest::Absorb {
                        entries: chunk.to_vec(),
                    },
                );
                if resp.into_ack().is_ok() {
                    moved += chunk.len() as u64;
                }
                std::thread::sleep(self.rebalance_throttle);
            }
        }
        moved
    }
}

/// The placement a membership change re-plans against, per strategy kind:
/// the DHT strategies place by consistent ring (same vnode count as
/// [`build_strategy`](crate::controller::build_strategy), so the planner
/// agrees with what clients will compute); centralized and replicated
/// keep every authoritative copy at the first member.
fn rebalance_placer(kind: StrategyKind, members: &[SiteId]) -> Box<dyn SitePlacer> {
    match kind {
        StrategyKind::Centralized | StrategyKind::Replicated => Box::new(HomePlacer {
            home: members[0],
            members: members.to_vec(),
        }),
        StrategyKind::DhtNonReplicated | StrategyKind::DhtLocalReplica => {
            Box::new(ConsistentRing::new(members.to_vec(), RING_VNODES))
        }
    }
}

/// Everything lives at one home site — the centralized/replicated
/// authoritative placement, shaped as a [`SitePlacer`] so the rebalance
/// planner can diff it.
struct HomePlacer {
    home: SiteId,
    members: Vec<SiteId>,
}

impl SitePlacer for HomePlacer {
    fn owner(&self, _key: &str) -> SiteId {
        self.home
    }

    fn sites(&self) -> Vec<SiteId> {
        self.members.clone()
    }
}

/// Tracked thread spawning: every thread a layer starts is joined by
/// [`ServiceRuntime::shutdown`], which is what makes the no-leaked-threads
/// guarantee checkable.
pub struct Spawner {
    threads: Vec<JoinHandle<()>>,
}

impl Spawner {
    /// Spawn a named service thread owned by the runtime.
    pub fn spawn(&mut self, name: impl Into<String>, f: impl FnOnce() + Send + 'static) {
        self.threads.push(
            // geometa-lint: allow(untracked-thread) Spawner IS the tracking mechanism: every handle lands in self.threads and ServiceRuntime::shutdown joins them all
            std::thread::Builder::new()
                .name(name.into())
                .spawn(f)
                .expect("spawn service thread"),
        );
    }
}

/// The piece a deployment supplies: how request/response bytes move
/// between a client and a site's server. Implementations: channels +
/// injected WAN sleep (`crate::live::ChannelLayer`), framed TCP
/// (`geometa_net::TcpLayer`).
pub trait ConnectionLayer: Send {
    /// The client-side transport this layer hands to [`StrategyClient`]s.
    type Transport: RegistryTransport + 'static;

    /// Start the serving side for every site in `core`'s topology. All
    /// threads must go through `spawner` so shutdown can join them.
    fn start(&mut self, core: &Arc<ServiceCore>, spawner: &mut Spawner);

    /// A client transport viewed from `site`. Returned as `Arc` so layers
    /// whose transports are location-independent (TCP: routing is per
    /// target, and the pooled connections + cast pump are expensive) can
    /// hand every client a clone of one shared instance.
    fn transport(&self, core: &Arc<ServiceCore>, site: SiteId) -> Arc<Self::Transport>;

    /// Called once at shutdown, after the core's shutdown flag is set:
    /// unblock any serving threads parked in a blocking wait (channel
    /// `recv`, socket `accept`) so they can observe the flag and exit.
    fn unblock(&self);
}

/// A running deployment: the [`ServiceCore`], the connection layer, and
/// every service thread (serving loops, delay line, sync agent).
pub struct ServiceRuntime<L: ConnectionLayer> {
    core: Arc<ServiceCore>,
    layer: L,
    threads: Vec<JoinHandle<()>>,
    sync_interval: Duration,
}

impl<L: ConnectionLayer> ServiceRuntime<L> {
    /// Boot registries for every site, start the layer's serving side, the
    /// delay-line worker and — for the replicated strategy — the sync
    /// agent (driven over the layer's own transport, so propagation pays
    /// the same latency clients do).
    ///
    /// Panics when a file-backed WAL cannot be opened or recovered; the
    /// operator binaries use [`ServiceRuntime::try_start`] for a clean
    /// error instead.
    pub fn start(config: RuntimeConfig, layer: L) -> ServiceRuntime<L> {
        match Self::try_start(config, layer) {
            Ok(rt) => rt,
            Err(e) => panic!("runtime start: {e}"),
        }
    }

    /// [`ServiceRuntime::start`], surfacing WAL open/recovery failures.
    pub fn try_start(config: RuntimeConfig, mut layer: L) -> Result<ServiceRuntime<L>, WalError> {
        let core = ServiceCore::new(&config)?;
        let mut spawner = Spawner {
            threads: Vec::new(),
        };
        {
            let delay = Arc::clone(core.delay_line());
            spawner.spawn("delay-line", move || delay.run_worker());
        }
        layer.start(&core, &mut spawner);
        let mut runtime = ServiceRuntime {
            core,
            layer,
            threads: spawner.threads,
            sync_interval: config.sync_interval,
        };
        if config.kind == StrategyKind::Replicated {
            runtime.spawn_sync_agent();
        }
        Ok(runtime)
    }

    fn spawn_sync_agent(&mut self) {
        // The agent replicates across the *boot-time* members. Elastic
        // joins under the replicated strategy get metadata through the
        // rebalance transfer; continuous agent coverage of late joiners
        // is future work (the agent's site list is fixed at spawn).
        let (_, sites) = self.core.membership();
        let agent_site = sites[0];
        let transport = self.layer.transport(&self.core, agent_site);
        let shutdown = Arc::clone(&self.core.shutdown);
        let stats = Arc::clone(&self.core.sync_stats);
        let interval = self.sync_interval;
        let mut spawner = Spawner {
            threads: std::mem::take(&mut self.threads),
        };
        spawner.spawn("sync-agent", move || {
            drive_sync_agent(&*transport, &sites, interval, &shutdown, &stats)
        });
        self.threads = spawner.threads;
    }

    /// The shared service core.
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// The connection layer (e.g. to read bound socket addresses).
    pub fn layer(&self) -> &L {
        &self.layer
    }

    /// Create a client for a node at `site`.
    pub fn client(&self, site: SiteId, node: u32) -> StrategyClient<L::Transport> {
        StrategyClient::new(
            self.layer.transport(&self.core, site),
            Arc::clone(&self.core.controller),
            ClientConfig { site, node },
        )
    }

    /// The strategy controller (for runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        &self.core.controller
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.core.registry(site)
    }

    /// Fault injection; see [`ServiceCore::fail_primary`].
    pub fn inject_registry_failure(&self, site: SiteId) -> bool {
        self.core.fail_primary(site)
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Stop and join every service thread. Idempotent; returns the number
    /// of threads joined (0 on a repeated call).
    pub fn shutdown(mut self) -> usize {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> usize {
        if self.core.shutdown.swap(true, Ordering::AcqRel) {
            return 0;
        }
        self.core.delay.stop();
        self.layer.unblock();
        let joined = self.threads.len();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Reconfigure transfers abort at the next chunk (they poll the
        // shutdown flag) — join them before the WALs close underneath.
        for t in self.core.background.lock().drain(..) {
            let _ = t.join();
        }
        // After every serving thread is gone: flush and stop the WALs
        // (site order, for a deterministic close sequence).
        for site in self.core.topology.site_ids() {
            if let Some(wal) = self.core.wals.get(&site) {
                wal.close();
            }
        }
        joined
    }
}

impl<L: ConnectionLayer> Drop for ServiceRuntime<L> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Entries per Absorb push issued by the sync agent. A recovering site
/// can face an arbitrarily large re-pulled window (rollback keeps the
/// window open while writes accumulate); pushing it as one message
/// would eventually exceed a network transport's frame/entry caps and
/// livelock replication. Bounded chunks (~a few hundred KB each) always
/// fit, and a mid-window failure just re-pulls — absorb is idempotent.
pub const SYNC_PUSH_CHUNK: usize = 4096;

/// Longest a failing site is skipped, in cycles (base backoff doubles
/// per consecutive failure up to this cap; jitter can add up to one
/// more base on top).
pub const SYNC_BACKOFF_CAP_CYCLES: u64 = 32;

/// Per-site pull backoff: consecutive failures double the number of
/// cycles the site is skipped (capped), plus deterministic seeded jitter
/// so multiple agents never re-probe a recovering site in lockstep.
struct PullBackoff {
    failures: u32,
    skip: u64,
    rng: SplitMix64,
}

impl PullBackoff {
    fn new(seed: u64, site: SiteId) -> PullBackoff {
        PullBackoff {
            failures: 0,
            skip: 0,
            rng: SplitMix64::new(seed).split(site.0 as u64),
        }
    }

    /// Returns true when the site should be skipped this cycle.
    fn should_skip(&mut self) -> bool {
        if self.skip > 0 {
            self.skip -= 1;
            return true;
        }
        false
    }

    fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
        let base = (1u64 << (self.failures - 1).min(63)).min(SYNC_BACKOFF_CAP_CYCLES);
        // Skip [base, 2*base) cycles: exponential with full-base jitter.
        self.skip = base + self.rng.range_u64(base);
    }

    fn record_success(&mut self) {
        self.failures = 0;
        self.skip = 0;
    }
}

/// The generic sync-agent loop: poll every site for its delta through
/// `transport`, integrate, and push to the others — the live and net
/// deployments run the exact same driver over their own transports.
///
/// Delivery is *acked*: pushes go through blocking `call` (the agent is
/// a background thread; the paper's agent is sequential anyway), because
/// a fire-and-forget `cast` may legitimately be dropped by a network
/// transport (bounded pump queue, unreachable peer) and the agent is the
/// replicated strategy's durability mechanism — it must not advance past
/// entries that never arrived. Failures roll the source watermark back
/// so the window is re-pulled and re-pushed next cycle (absorb is
/// idempotent, so double delivery is harmless).
///
/// A failed pull leaves the watermark untouched and puts the site on
/// capped exponential backoff with seeded jitter (a dead site is not
/// hammered every cycle; a recovering one is re-probed within a bounded,
/// de-synchronized number of cycles). Health counters land in `stats`.
pub fn drive_sync_agent<T: RegistryTransport>(
    transport: &T,
    sites: &[SiteId],
    interval: Duration,
    shutdown: &AtomicBool,
    stats: &SyncAgentStats,
) {
    let mut state = SyncAgentState::new(sites.to_vec());
    let mut backoff: Vec<PullBackoff> = sites
        .iter()
        .map(|&s| PullBackoff::new(0x5EED_A6E7, s))
        .collect();
    while !shutdown.load(Ordering::Acquire) {
        for (idx, &site) in sites.iter().enumerate() {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            if backoff[idx].should_skip() {
                stats.backoff_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let prev_watermark = state.watermark(site);
            let pull_time = transport.now_micros();
            let resp = transport.call(
                site,
                RegistryRequest::DeltaPull {
                    since: prev_watermark,
                },
            );
            let delta = match resp {
                RegistryResponse::Delta { entries } => {
                    backoff[idx].record_success();
                    entries
                }
                _ => {
                    // Pull failed: keep the watermark, back the site off.
                    stats.pull_failures.fetch_add(1, Ordering::Relaxed);
                    backoff[idx].record_failure();
                    continue;
                }
            };
            // Back the watermark off by 1us so same-tick writes are
            // re-pulled (absorb is idempotent).
            let pushes = state.integrate(site, delta, pull_time.saturating_sub(1));
            'pushes: for push in pushes {
                for chunk in push.entries.chunks(SYNC_PUSH_CHUNK) {
                    let resp = transport.call(
                        push.target,
                        RegistryRequest::Absorb {
                            entries: chunk.to_vec(),
                        },
                    );
                    if resp.into_ack().is_err() {
                        stats.push_failures.fetch_add(1, Ordering::Relaxed);
                        state.rollback_watermark(site, prev_watermark);
                        break 'pushes; // re-pull this window next cycle
                    }
                }
            }
        }
        state.cycle_done();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;
    use crossbeam::channel::unbounded;

    fn put_all(core: &Arc<ServiceCore>, ring: &ConsistentRing, n: usize) {
        for i in 0..n {
            let name = format!("f{i}");
            let owner = ring.owner(&name);
            let entry = RegistryEntry::new(
                &name,
                1,
                FileLocation {
                    site: owner,
                    node: 0,
                },
                i as u64 + 1,
            );
            core.serve(owner, RegistryRequest::Put { entry })
                .into_ack()
                .unwrap();
        }
    }

    /// Block until no transfer is in flight and the epoch reads `epoch`.
    fn wait_settled(core: &Arc<ServiceCore>, epoch: u64) {
        for _ in 0..5000 {
            {
                let m = core.membership.lock();
                if !m.rebalancing && m.epoch == epoch {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("reconfigure did not settle at epoch {epoch}");
    }

    fn elastic_config(members: &[u16]) -> RuntimeConfig {
        RuntimeConfig {
            kind: StrategyKind::DhtNonReplicated,
            members: Some(members.iter().map(|&s| SiteId(s)).collect()),
            rebalance_throttle: Duration::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn join_rebalances_bounded_and_bumps_epoch() {
        let core = ServiceCore::new(&elastic_config(&[0, 1, 2])).unwrap();
        let old_ring = ConsistentRing::new((0..3).map(SiteId).collect(), RING_VNODES);
        let n = 1_000;
        put_all(&core, &old_ring, n);
        core.serve(
            SiteId(0),
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Join,
                site: SiteId(3),
            },
        )
        .into_ack()
        .unwrap();
        wait_settled(&core, 1);
        let (epoch, members) = core.membership();
        assert_eq!(epoch, 1);
        assert_eq!(members, (0..4).map(SiteId).collect::<Vec<_>>());
        // Every key is resolvable at its new owner, and only ~1/n of the
        // keys moved (the consistent-ring bound, with slack).
        let new_ring = ConsistentRing::new(members, RING_VNODES);
        for i in 0..n {
            let name = format!("f{i}");
            let owner = new_ring.owner(&name);
            assert!(
                core.registry(owner).unwrap().get(&name).is_ok(),
                "{name} missing at post-join owner {owner}"
            );
        }
        let moved = core.membership.lock().last_moved;
        assert!(moved > 0, "a join must pull keys to the new site");
        let frac = moved as f64 / n as f64;
        assert!(frac < 0.45, "join moved {frac} of the keys (bound ~0.25)");
        match core.serve(SiteId(3), RegistryRequest::Status) {
            RegistryResponse::Status { status } => {
                assert_eq!(status.epoch, 1);
                assert_eq!(status.members.len(), 4);
                assert!(!status.rebalancing);
                assert_eq!(status.last_moved, moved);
            }
            other => panic!("expected status, got {other:?}"),
        }
        for t in core.background.lock().drain(..) {
            t.join().unwrap();
        }
    }

    #[test]
    fn drain_copies_ahead_then_leave_flips() {
        let core = ServiceCore::new(&elastic_config(&[0, 1, 2, 3])).unwrap();
        let ring = ConsistentRing::new((0..4).map(SiteId).collect(), RING_VNODES);
        let n = 600;
        put_all(&core, &ring, n);
        // Drain: keys copied to their post-leave owners, nothing flips.
        core.serve(
            SiteId(0),
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Drain,
                site: SiteId(2),
            },
        )
        .into_ack()
        .unwrap();
        wait_settled(&core, 0);
        let (epoch, members) = core.membership();
        assert_eq!(epoch, 0, "drain must not bump the epoch");
        assert_eq!(members.len(), 4, "drain must not change membership");
        let drained = core.membership.lock().last_moved;
        assert!(drained > 0, "drain copies the departing site's keys");
        // Leave: epoch flips; every key lives at a surviving owner. The
        // second transfer re-plans, so the drain made it near-empty.
        core.serve(
            SiteId(0),
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Leave,
                site: SiteId(2),
            },
        )
        .into_ack()
        .unwrap();
        wait_settled(&core, 1);
        let (epoch, members) = core.membership();
        assert_eq!(epoch, 1);
        assert_eq!(members, vec![SiteId(0), SiteId(1), SiteId(3)]);
        let shrunk = ConsistentRing::new(members, RING_VNODES);
        for i in 0..n {
            let name = format!("f{i}");
            let owner = shrunk.owner(&name);
            assert_ne!(owner, SiteId(2));
            assert!(
                core.registry(owner).unwrap().get(&name).is_ok(),
                "{name} missing at post-leave owner {owner}"
            );
        }
        assert!(
            !core
                .controller()
                .strategy()
                .read_plan("f0", SiteId(0))
                .probes
                .is_empty(),
            "controller still serves plans after the switch"
        );
        for t in core.background.lock().drain(..) {
            t.join().unwrap();
        }
    }

    #[test]
    fn reconfigure_validates_targets() {
        let core = ServiceCore::new(&elastic_config(&[0, 1])).unwrap();
        let refuse =
            |op, site| match core.serve(SiteId(0), RegistryRequest::Reconfigure { op, site }) {
                RegistryResponse::Error { error } => error,
                other => panic!("expected refusal, got {other:?}"),
            };
        // Join of a current member / of a site outside the topology.
        assert_eq!(
            refuse(ReconfigureOp::Join, SiteId(1)),
            MetaError::Unavailable
        );
        assert_eq!(
            refuse(ReconfigureOp::Join, SiteId(9)),
            MetaError::Unavailable
        );
        // Leave/drain of a non-member.
        assert_eq!(
            refuse(ReconfigureOp::Leave, SiteId(3)),
            MetaError::Unavailable
        );
        assert_eq!(
            refuse(ReconfigureOp::Drain, SiteId(3)),
            MetaError::Unavailable
        );
        // A transfer in flight refuses concurrent reconfigures.
        core.membership.lock().rebalancing = true;
        assert_eq!(
            refuse(ReconfigureOp::Join, SiteId(2)),
            MetaError::Contention
        );
        core.membership.lock().rebalancing = false;
        // The last member cannot leave.
        let solo = ServiceCore::new(&elastic_config(&[0])).unwrap();
        match solo.serve(
            SiteId(0),
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Leave,
                site: SiteId(0),
            },
        ) {
            RegistryResponse::Error { error } => assert_eq!(error, MetaError::Unavailable),
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn centralized_leave_rehomes_everything() {
        let mut config = elastic_config(&[0, 1, 2]);
        config.kind = StrategyKind::Centralized;
        let core = ServiceCore::new(&config).unwrap();
        for i in 0..50 {
            let name = format!("c{i}");
            let entry = RegistryEntry::new(
                &name,
                1,
                FileLocation {
                    site: SiteId(0),
                    node: 0,
                },
                i + 1,
            );
            core.serve(SiteId(0), RegistryRequest::Put { entry })
                .into_ack()
                .unwrap();
        }
        // Site 0 is the home; its leave must move every entry to the new
        // home (the next member in id order).
        core.serve(
            SiteId(1),
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Leave,
                site: SiteId(0),
            },
        )
        .into_ack()
        .unwrap();
        wait_settled(&core, 1);
        let (_, members) = core.membership();
        assert_eq!(members, vec![SiteId(1), SiteId(2)]);
        for i in 0..50 {
            let name = format!("c{i}");
            assert!(
                core.registry(SiteId(1)).unwrap().get(&name).is_ok(),
                "{name} missing at the new home"
            );
        }
        for t in core.background.lock().drain(..) {
            t.join().unwrap();
        }
    }

    #[test]
    fn delay_line_executes_in_deadline_order() {
        let delay = DelayLine::new();
        std::thread::scope(|s| {
            s.spawn(|| delay.run_worker());
            let (tx, rx) = unbounded();
            let t1 = tx.clone();
            let t2 = tx.clone();
            delay.schedule(
                Duration::from_millis(20),
                Box::new(move || {
                    let _ = t1.send(2u32);
                }),
            );
            delay.schedule(
                Duration::from_millis(5),
                Box::new(move || {
                    let _ = t2.send(1u32);
                }),
            );
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
            delay.stop();
        });
    }

    #[test]
    fn failed_pull_keeps_the_watermark() {
        // A transport whose DeltaPull to site 1 always errors: the agent
        // must keep polling it with `since == 0` rather than advancing
        // past updates it never saw.
        struct Flaky {
            pulls: std::sync::Mutex<Vec<(SiteId, u64)>>,
        }
        impl RegistryTransport for Flaky {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                if let RegistryRequest::DeltaPull { since } = req {
                    self.pulls.lock().unwrap().push((target, since));
                }
                if target == SiteId(1) {
                    RegistryResponse::Error {
                        error: MetaError::Unavailable,
                    }
                } else {
                    RegistryResponse::Delta {
                        entries: Vec::new(),
                    }
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = Flaky {
            pulls: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let stats = SyncAgentStats::default();
        let sites = [SiteId(0), SiteId(1)];
        // Run enough cycles that site 1 is re-probed at least once
        // through its backoff; a watcher thread flips the flag.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(80));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(
                &transport,
                &sites,
                Duration::from_millis(2),
                &shutdown,
                &stats,
            );
        });
        let snap = stats.snapshot();
        assert!(snap.pull_failures >= 2, "failures counted: {snap:?}");
        assert!(snap.backoff_skips >= 1, "failing site backed off: {snap:?}");
        let pulls = transport.pulls.lock().unwrap();
        let site1: Vec<u64> = pulls
            .iter()
            .filter(|(s, _)| *s == SiteId(1))
            .map(|(_, since)| *since)
            .collect();
        assert!(site1.len() >= 2, "agent ran at least two cycles");
        assert!(
            site1.iter().all(|&w| w == 0),
            "failed pulls must not advance the watermark: {site1:?}"
        );
        let site0: Vec<u64> = pulls
            .iter()
            .filter(|(s, _)| *s == SiteId(0))
            .map(|(_, since)| *since)
            .collect();
        assert!(
            site0.iter().skip(1).all(|&w| w == 41),
            "successful pulls advance to pull_time-1: {site0:?}"
        );
    }

    #[test]
    fn failed_push_rolls_the_watermark_back() {
        use crate::entry::{FileLocation, RegistryEntry};
        // Site 0 always has a delta; pushes to site 1 always fail. The
        // agent must keep re-pulling site 0 from 0 (rollback), not
        // advance past entries site 1 never received.
        struct PushBlackhole {
            pulls: std::sync::Mutex<Vec<u64>>,
        }
        impl RegistryTransport for PushBlackhole {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                match req {
                    RegistryRequest::DeltaPull { since } => {
                        if target == SiteId(0) {
                            self.pulls.lock().unwrap().push(since);
                            RegistryResponse::Delta {
                                entries: vec![RegistryEntry::new(
                                    "f",
                                    1,
                                    FileLocation {
                                        site: SiteId(0),
                                        node: 0,
                                    },
                                    5,
                                )],
                            }
                        } else {
                            RegistryResponse::Delta {
                                entries: Vec::new(),
                            }
                        }
                    }
                    RegistryRequest::Absorb { .. } => RegistryResponse::Error {
                        error: MetaError::Unavailable,
                    },
                    _ => RegistryResponse::Ack,
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = PushBlackhole {
            pulls: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let stats = SyncAgentStats::default();
        let sites = [SiteId(0), SiteId(1)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(
                &transport,
                &sites,
                Duration::from_millis(5),
                &shutdown,
                &stats,
            );
        });
        let pulls = transport.pulls.lock().unwrap();
        assert!(pulls.len() >= 2, "agent ran at least two cycles");
        assert!(
            pulls.iter().all(|&w| w == 0),
            "undelivered pushes must roll the watermark back for a re-pull: {pulls:?}"
        );
        assert!(stats.snapshot().push_failures >= 2, "push failures counted");
    }

    #[test]
    fn pull_backoff_is_capped_exponential_with_jitter() {
        let mut b = PullBackoff::new(0x5EED_A6E7, SiteId(3));
        let mut prev_base = 0u64;
        for failure in 1..=12u32 {
            b.record_failure();
            let base = (1u64 << (failure - 1).min(63)).min(SYNC_BACKOFF_CAP_CYCLES);
            assert!(
                b.skip >= base && b.skip < 2 * base,
                "failure {failure}: skip {} outside [{base}, {})",
                b.skip,
                2 * base
            );
            assert!(base >= prev_base, "backoff never shrinks under failures");
            assert!(base <= SYNC_BACKOFF_CAP_CYCLES, "backoff capped");
            prev_base = base;
        }
        // Every skipped cycle decrements; success resets instantly.
        let skip = b.skip;
        assert!(b.should_skip());
        assert_eq!(b.skip, skip - 1);
        b.record_success();
        assert!(!b.should_skip());
        // Determinism: same seed + site → identical jitter sequence.
        let mut c = PullBackoff::new(0x5EED_A6E7, SiteId(3));
        let mut d = PullBackoff::new(0x5EED_A6E7, SiteId(3));
        for _ in 0..8 {
            c.record_failure();
            d.record_failure();
            assert_eq!(c.skip, d.skip);
        }
        // ...and different sites de-synchronize.
        let mut e = PullBackoff::new(0x5EED_A6E7, SiteId(0));
        let mut f = PullBackoff::new(0x5EED_A6E7, SiteId(1));
        let seqs: Vec<(u64, u64)> = (0..8)
            .map(|_| {
                e.record_failure();
                f.record_failure();
                (e.skip, f.skip)
            })
            .collect();
        assert!(
            seqs.iter().any(|(a, b)| a != b),
            "sites must not back off in lockstep: {seqs:?}"
        );
    }

    #[test]
    fn oversized_windows_push_in_bounded_chunks() {
        use crate::entry::{FileLocation, RegistryEntry};
        // A re-pulled window larger than one frame can carry must go out
        // as several bounded Absorbs, not one undeliverable message.
        let n_entries = SYNC_PUSH_CHUNK * 2 + 17;
        struct BigDelta {
            served: std::sync::atomic::AtomicBool,
            n: usize,
            absorb_sizes: std::sync::Mutex<Vec<usize>>,
        }
        impl RegistryTransport for BigDelta {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                match req {
                    RegistryRequest::DeltaPull { .. } => {
                        if target == SiteId(0) && !self.served.swap(true, Ordering::AcqRel) {
                            RegistryResponse::Delta {
                                entries: (0..self.n)
                                    .map(|i| {
                                        RegistryEntry::new(
                                            format!("f{i}"),
                                            1,
                                            FileLocation {
                                                site: SiteId(0),
                                                node: 0,
                                            },
                                            5,
                                        )
                                    })
                                    .collect(),
                            }
                        } else {
                            RegistryResponse::Delta {
                                entries: Vec::new(),
                            }
                        }
                    }
                    RegistryRequest::Absorb { entries } => {
                        self.absorb_sizes.lock().unwrap().push(entries.len());
                        RegistryResponse::Ack
                    }
                    _ => RegistryResponse::Ack,
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = BigDelta {
            served: std::sync::atomic::AtomicBool::new(false),
            n: n_entries,
            absorb_sizes: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let stats = SyncAgentStats::default();
        let sites = [SiteId(0), SiteId(1)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(
                &transport,
                &sites,
                Duration::from_millis(5),
                &shutdown,
                &stats,
            );
        });
        let sizes = transport.absorb_sizes.lock().unwrap();
        assert_eq!(
            sizes.iter().sum::<usize>(),
            n_entries,
            "window delivered whole"
        );
        assert!(
            sizes.iter().all(|&s| s <= SYNC_PUSH_CHUNK),
            "every push bounded: {sizes:?}"
        );
        assert!(sizes.len() >= 3, "window split into chunks: {sizes:?}");
    }
}
