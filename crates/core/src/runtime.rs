//! The transport-generic service runtime.
//!
//! Every real deployment of the registry — threads + channels
//! ([`crate::live`]), TCP sockets (`geometa-net`), or any future backend
//! (UDS, real WAN) — needs the same machinery: registry instances per
//! site, a serving dispatch, tracked service threads, a delay line for
//! asynchronous propagation, sync-agent driving for the replicated
//! strategy, failure injection, and graceful shutdown. This module owns
//! all of it once; a deployment only supplies a [`ConnectionLayer`] — the
//! piece that moves `RegistryRequest`/`RegistryResponse` bytes between a
//! client and a site's server.
//!
//! Layering:
//!
//! ```text
//! StrategyClient<L::Transport>            (plans → RPCs)
//!         │ call / cast
//! L::Transport: RegistryTransport         (connection layer, client side)
//!         │ channel send / framed TCP / …
//! ConnectionLayer serving loops           (connection layer, server side)
//!         │ ServiceCore::serve
//! RegistryInstance                        (one per site; shared by sim,
//!                                          live and net deployments)
//! ```
//!
//! The DES binding (`geometa_experiments::simbind`) intentionally stays
//! outside: virtual time cannot run on real threads. Everything below the
//! transport — `RegistryInstance`, the strategies, `SyncAgentState` — is
//! the exact code the simulator drives, which is what makes live/net runs
//! comparable to simulated ones.

use crate::client::{ClientConfig, StrategyClient};
use crate::controller::ArchitectureController;
use crate::protocol::{RegistryRequest, RegistryResponse};
use crate::registry::RegistryInstance;
use crate::strategy::StrategyKind;
use crate::sync_agent::SyncAgentState;
use crate::transport::{InProcessTransport, RegistryTransport};
use crate::wal::{FileWal, FsyncPolicy, MemWal, TornTail, WalError, WalSink};
use crate::MetaError;
use geometa_sim::rng::SplitMix64;
use geometa_sim::topology::{SiteId, Topology};
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which write-ahead log backs each site's registry.
#[derive(Clone, Debug)]
pub enum WalConfig {
    /// No logging: writes live only in memory (pre-WAL behaviour).
    Disabled,
    /// In-memory log: identical append/replay semantics without I/O —
    /// the deterministic default for in-process and channel deployments.
    Memory,
    /// File-backed log under `data_dir/site-<n>/` with the given fsync
    /// policy. Existing state is recovered (snapshot + clean log tail
    /// replayed into the registries) before serving starts.
    File {
        /// Root directory; one subdirectory per site.
        data_dir: PathBuf,
        /// When appended records become durable.
        fsync: FsyncPolicy,
    },
}

/// Configuration shared by every runtime-backed deployment.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Site layout and latency matrix.
    pub topology: Topology,
    /// Which of the four strategies to run.
    pub kind: StrategyKind,
    /// Shards per registry cache.
    pub shards: usize,
    /// Real-time interval between sync-agent cycles (replicated strategy).
    pub sync_interval: Duration,
    /// Write-ahead logging behind every registry.
    pub wal: WalConfig,
    /// Appends between snapshot + log-truncation cycles.
    pub snapshot_every: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            topology: Topology::azure_4dc(),
            kind: StrategyKind::DhtLocalReplica,
            shards: 16,
            sync_interval: Duration::from_millis(5),
            wal: WalConfig::Memory,
            snapshot_every: 4096,
        }
    }
}

/// What one site's restart recovered from its WAL.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The site that recovered.
    pub site: SiteId,
    /// Entries restored from the snapshot.
    pub snapshot_entries: usize,
    /// Log records replayed on top of the snapshot.
    pub replayed: usize,
    /// A torn log tail that was truncated during recovery, if any.
    pub torn: Option<TornTail>,
}

/// Sync-agent health counters, surfaced through
/// [`ServiceCore::sync_stats`].
#[derive(Debug, Default)]
pub struct SyncAgentStats {
    /// Delta pulls that returned an error (the site backs off).
    pub pull_failures: AtomicU64,
    /// Absorb pushes that were not acked (watermark rolled back).
    pub push_failures: AtomicU64,
    /// Cycles where a backed-off site was skipped.
    pub backoff_skips: AtomicU64,
}

/// Point-in-time copy of [`SyncAgentStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncAgentStatsSnapshot {
    /// See [`SyncAgentStats::pull_failures`].
    pub pull_failures: u64,
    /// See [`SyncAgentStats::push_failures`].
    pub push_failures: u64,
    /// See [`SyncAgentStats::backoff_skips`].
    pub backoff_skips: u64,
}

impl SyncAgentStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> SyncAgentStatsSnapshot {
        SyncAgentStatsSnapshot {
            pull_failures: self.pull_failures.load(Ordering::Relaxed),
            push_failures: self.push_failures.load(Ordering::Relaxed),
            backoff_skips: self.backoff_skips.load(Ordering::Relaxed),
        }
    }
}

/// A deferred job executed by the delay line.
struct DelayedJob {
    due: Instant,
    seq: u64,
    job: Box<dyn FnOnce() + Send>,
}

impl PartialEq for DelayedJob {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedJob {}
impl PartialOrd for DelayedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (due, seq).
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Executes closures at deadlines; the asynchronous-propagation spine.
pub struct DelayLine {
    heap: Mutex<BinaryHeap<DelayedJob>>,
    cond: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
}

impl DelayLine {
    /// A fresh delay line (the runtime spawns its worker).
    pub fn new() -> Arc<DelayLine> {
        Arc::new(DelayLine {
            heap: Mutex::new(BinaryHeap::new()),
            cond: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Schedule `job` to run after `delay`.
    pub fn schedule(&self, delay: Duration, job: Box<dyn FnOnce() + Send>) {
        let due = Instant::now() + delay;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().push(DelayedJob { due, seq, job });
        self.cond.notify_one();
    }

    /// The worker loop: pops jobs in deadline order until [`Self::stop`].
    pub fn run_worker(self: &Arc<Self>) {
        loop {
            let job = {
                let mut heap = self.heap.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    match heap.peek() {
                        None => {
                            self.cond.wait(&mut heap);
                        }
                        Some(top) => {
                            let now = Instant::now();
                            if top.due <= now {
                                break heap.pop().expect("peeked job exists");
                            }
                            let due = top.due;
                            self.cond.wait_until(&mut heap, due);
                        }
                    }
                }
            };
            (job.job)();
        }
    }

    /// Stop the worker; pending jobs are dropped.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cond.notify_all();
    }
}

/// Everything a connection layer serves from: the registry instances, the
/// strategy controller, the logical clock, the delay line and the
/// shutdown flag. Shared (via `Arc`) between the runtime, the layer's
/// serving threads, and client transports.
pub struct ServiceCore {
    topology: Arc<Topology>,
    registries: HashMap<SiteId, Arc<RegistryInstance>>,
    wals: HashMap<SiteId, Arc<dyn WalSink>>,
    snapshot_every: u64,
    recovery: Vec<RecoveryReport>,
    controller: Arc<ArchitectureController>,
    sync_stats: Arc<SyncAgentStats>,
    delay: Arc<DelayLine>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
}

impl ServiceCore {
    fn new(config: &RuntimeConfig) -> Result<Arc<ServiceCore>, WalError> {
        let topology = Arc::new(config.topology.clone());
        let sites: Vec<SiteId> = topology.site_ids().collect();
        let registries: HashMap<SiteId, Arc<RegistryInstance>> = sites
            .iter()
            .map(|&s| (s, Arc::new(RegistryInstance::new(s, config.shards))))
            .collect();
        let mut wals: HashMap<SiteId, Arc<dyn WalSink>> = HashMap::new();
        let mut recovery = Vec::new();
        for &site in &sites {
            match &config.wal {
                WalConfig::Disabled => {}
                WalConfig::Memory => {
                    wals.insert(site, Arc::new(MemWal::new()));
                }
                WalConfig::File { data_dir, fsync } => {
                    let dir = data_dir.join(format!("site-{}", site.0));
                    let (wal, rec) = FileWal::open(&dir, *fsync)?;
                    if !rec.is_empty() || rec.torn.is_some() {
                        let registry = &registries[&site];
                        for entry in &rec.entries {
                            let _ = registry.absorb(entry);
                        }
                        for record in &rec.tail {
                            let _ = InProcessTransport::serve(
                                registry,
                                record.req.clone(),
                                record.now_micros,
                            );
                        }
                        recovery.push(RecoveryReport {
                            site,
                            snapshot_entries: rec.entries.len(),
                            replayed: rec.tail.len(),
                            torn: rec.torn,
                        });
                    }
                    wals.insert(site, Arc::new(wal));
                }
            }
        }
        Ok(Arc::new(ServiceCore {
            topology,
            registries,
            wals,
            snapshot_every: config.snapshot_every.max(1),
            recovery,
            controller: Arc::new(ArchitectureController::with_kind(config.kind, sites)),
            sync_stats: Arc::new(SyncAgentStats::default()),
            delay: DelayLine::new(),
            epoch: Instant::now(),
            shutdown: Arc::new(AtomicBool::new(false)),
        }))
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The strategy controller (runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        &self.controller
    }

    /// The shared delay line (asynchronous propagation).
    pub fn delay_line(&self) -> &Arc<DelayLine> {
        &self.delay
    }

    /// Monotonic logical clock in microseconds since runtime start.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Whether shutdown has begun (serving loops poll this).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.registries.get(&site)
    }

    /// Serve one request against `site`'s registry — the single dispatch
    /// every connection layer calls, so registry semantics live in exactly
    /// one place ([`InProcessTransport::serve`]).
    ///
    /// Successful writes are appended to the site's WAL *before the ack
    /// is returned*: with a file sink the append blocks until the record
    /// is durable per its [`FsyncPolicy`], so an acked write survives a
    /// process kill. A WAL append failure converts the ack into
    /// `Unavailable` — the write may exist in memory, but the durability
    /// contract ("acked ⇒ recoverable") is never weakened silently.
    pub fn serve(&self, site: SiteId, req: RegistryRequest) -> RegistryResponse {
        let Some(r) = self.registries.get(&site) else {
            return RegistryResponse::Error {
                error: MetaError::Unavailable,
            };
        };
        let wal = self.wals.get(&site).filter(|_| req.is_write());
        let logged = wal.map(|_| req.clone());
        let now = self.now_micros();
        let resp = InProcessTransport::serve(r, req, now);
        if let (Some(wal), Some(req), RegistryResponse::Ack) = (wal, logged, &resp) {
            if let Err(e) = wal.append(&req, now) {
                eprintln!("geometa: wal append failed at site {}: {e}", site.0);
                return RegistryResponse::Error {
                    error: MetaError::Unavailable,
                };
            }
            if wal.records_since_snapshot() >= self.snapshot_every {
                let registry = Arc::clone(r);
                if let Err(e) = wal.install_snapshot(&mut || registry.all_entries()) {
                    // Snapshot failure is not fatal to the ack (the
                    // record is durable in the log); it is surfaced and
                    // retried at the next trigger.
                    eprintln!("geometa: wal snapshot failed at site {}: {e}", site.0);
                }
            }
        }
        resp
    }

    /// Serve an ordered batch of requests against `site`'s registry,
    /// responses in request order.
    ///
    /// Runs of consecutive `Get`s are grouped into one
    /// [`RegistryInstance::multi_get_keys`] call (one shard lock per shard
    /// group instead of one per key) — the server reactor decodes a whole
    /// readiness pass worth of pipelined frames and hands them here.
    /// Everything else (writes, delta pulls) goes through [`Self::serve`]
    /// one at a time, so the WAL append-before-ack contract and snapshot
    /// triggers are untouched. A write between two gets splits the get run:
    /// batching never reorders a read past a write it arrived behind.
    pub fn serve_batch(&self, site: SiteId, reqs: Vec<RegistryRequest>) -> Vec<RegistryResponse> {
        let Some(r) = self.registries.get(&site) else {
            return reqs
                .iter()
                .map(|_| RegistryResponse::Error {
                    error: MetaError::Unavailable,
                })
                .collect();
        };
        let mut out = Vec::with_capacity(reqs.len());
        let mut gets = Vec::new();
        for req in reqs {
            match req {
                RegistryRequest::Get { key } => gets.push(key),
                other => {
                    self.flush_gets(site, r, &mut gets, &mut out);
                    out.push(self.serve(site, other));
                }
            }
        }
        self.flush_gets(site, r, &mut gets, &mut out);
        out
    }

    /// Drain a pending run of `Get` keys into `out`. A single get goes
    /// through the ordinary [`Self::serve`] path; two or more use the
    /// shard-grouped batch read.
    fn flush_gets(
        &self,
        site: SiteId,
        r: &Arc<RegistryInstance>,
        gets: &mut Vec<geometa_cache::Key>,
        out: &mut Vec<RegistryResponse>,
    ) {
        match gets.len() {
            0 => {}
            1 => {
                let key = gets.pop().expect("len checked");
                out.push(self.serve(site, RegistryRequest::Get { key }));
            }
            _ => {
                out.extend(r.multi_get_keys(gets).into_iter().map(|res| match res {
                    Ok(entry) => RegistryResponse::Found { entry },
                    Err(error) => RegistryResponse::Error { error },
                }));
                gets.clear();
            }
        }
    }

    /// The site's write-ahead log, when the deployment configured one.
    pub fn wal(&self, site: SiteId) -> Option<&Arc<dyn WalSink>> {
        self.wals.get(&site)
    }

    /// What each site recovered from disk at startup (empty for fresh
    /// starts and non-file WALs).
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.recovery
    }

    /// Sync-agent health counters (zero when no agent runs).
    pub fn sync_stats(&self) -> SyncAgentStatsSnapshot {
        self.sync_stats.snapshot()
    }

    /// Fault injection: kill `site`'s primary cache mid-traffic. The
    /// serving loops keep running; the next operation drives the HaCache
    /// primary→replica promotion. Returns whether the site hosts a
    /// registry.
    pub fn fail_primary(&self, site: SiteId) -> bool {
        match self.registries.get(&site) {
            Some(r) => {
                r.fail_primary();
                true
            }
            None => false,
        }
    }
}

/// Tracked thread spawning: every thread a layer starts is joined by
/// [`ServiceRuntime::shutdown`], which is what makes the no-leaked-threads
/// guarantee checkable.
pub struct Spawner {
    threads: Vec<JoinHandle<()>>,
}

impl Spawner {
    /// Spawn a named service thread owned by the runtime.
    pub fn spawn(&mut self, name: impl Into<String>, f: impl FnOnce() + Send + 'static) {
        self.threads.push(
            // geometa-lint: allow(untracked-thread) Spawner IS the tracking mechanism: every handle lands in self.threads and ServiceRuntime::shutdown joins them all
            std::thread::Builder::new()
                .name(name.into())
                .spawn(f)
                .expect("spawn service thread"),
        );
    }
}

/// The piece a deployment supplies: how request/response bytes move
/// between a client and a site's server. Implementations: channels +
/// injected WAN sleep (`crate::live::ChannelLayer`), framed TCP
/// (`geometa_net::TcpLayer`).
pub trait ConnectionLayer: Send {
    /// The client-side transport this layer hands to [`StrategyClient`]s.
    type Transport: RegistryTransport + 'static;

    /// Start the serving side for every site in `core`'s topology. All
    /// threads must go through `spawner` so shutdown can join them.
    fn start(&mut self, core: &Arc<ServiceCore>, spawner: &mut Spawner);

    /// A client transport viewed from `site`. Returned as `Arc` so layers
    /// whose transports are location-independent (TCP: routing is per
    /// target, and the pooled connections + cast pump are expensive) can
    /// hand every client a clone of one shared instance.
    fn transport(&self, core: &Arc<ServiceCore>, site: SiteId) -> Arc<Self::Transport>;

    /// Called once at shutdown, after the core's shutdown flag is set:
    /// unblock any serving threads parked in a blocking wait (channel
    /// `recv`, socket `accept`) so they can observe the flag and exit.
    fn unblock(&self);
}

/// A running deployment: the [`ServiceCore`], the connection layer, and
/// every service thread (serving loops, delay line, sync agent).
pub struct ServiceRuntime<L: ConnectionLayer> {
    core: Arc<ServiceCore>,
    layer: L,
    threads: Vec<JoinHandle<()>>,
    sync_interval: Duration,
}

impl<L: ConnectionLayer> ServiceRuntime<L> {
    /// Boot registries for every site, start the layer's serving side, the
    /// delay-line worker and — for the replicated strategy — the sync
    /// agent (driven over the layer's own transport, so propagation pays
    /// the same latency clients do).
    ///
    /// Panics when a file-backed WAL cannot be opened or recovered; the
    /// operator binaries use [`ServiceRuntime::try_start`] for a clean
    /// error instead.
    pub fn start(config: RuntimeConfig, layer: L) -> ServiceRuntime<L> {
        match Self::try_start(config, layer) {
            Ok(rt) => rt,
            Err(e) => panic!("runtime start: {e}"),
        }
    }

    /// [`ServiceRuntime::start`], surfacing WAL open/recovery failures.
    pub fn try_start(config: RuntimeConfig, mut layer: L) -> Result<ServiceRuntime<L>, WalError> {
        let core = ServiceCore::new(&config)?;
        let mut spawner = Spawner {
            threads: Vec::new(),
        };
        {
            let delay = Arc::clone(core.delay_line());
            spawner.spawn("delay-line", move || delay.run_worker());
        }
        layer.start(&core, &mut spawner);
        let mut runtime = ServiceRuntime {
            core,
            layer,
            threads: spawner.threads,
            sync_interval: config.sync_interval,
        };
        if config.kind == StrategyKind::Replicated {
            runtime.spawn_sync_agent();
        }
        Ok(runtime)
    }

    fn spawn_sync_agent(&mut self) {
        let sites: Vec<SiteId> = self.core.topology.site_ids().collect();
        let agent_site = sites[0];
        let transport = self.layer.transport(&self.core, agent_site);
        let shutdown = Arc::clone(&self.core.shutdown);
        let stats = Arc::clone(&self.core.sync_stats);
        let interval = self.sync_interval;
        let mut spawner = Spawner {
            threads: std::mem::take(&mut self.threads),
        };
        spawner.spawn("sync-agent", move || {
            drive_sync_agent(&*transport, &sites, interval, &shutdown, &stats)
        });
        self.threads = spawner.threads;
    }

    /// The shared service core.
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// The connection layer (e.g. to read bound socket addresses).
    pub fn layer(&self) -> &L {
        &self.layer
    }

    /// Create a client for a node at `site`.
    pub fn client(&self, site: SiteId, node: u32) -> StrategyClient<L::Transport> {
        StrategyClient::new(
            self.layer.transport(&self.core, site),
            Arc::clone(&self.core.controller),
            ClientConfig { site, node },
        )
    }

    /// The strategy controller (for runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        &self.core.controller
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.core.registry(site)
    }

    /// Fault injection; see [`ServiceCore::fail_primary`].
    pub fn inject_registry_failure(&self, site: SiteId) -> bool {
        self.core.fail_primary(site)
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Stop and join every service thread. Idempotent; returns the number
    /// of threads joined (0 on a repeated call).
    pub fn shutdown(mut self) -> usize {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> usize {
        if self.core.shutdown.swap(true, Ordering::AcqRel) {
            return 0;
        }
        self.core.delay.stop();
        self.layer.unblock();
        let joined = self.threads.len();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // After every serving thread is gone: flush and stop the WALs
        // (site order, for a deterministic close sequence).
        for site in self.core.topology.site_ids() {
            if let Some(wal) = self.core.wals.get(&site) {
                wal.close();
            }
        }
        joined
    }
}

impl<L: ConnectionLayer> Drop for ServiceRuntime<L> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Entries per Absorb push issued by the sync agent. A recovering site
/// can face an arbitrarily large re-pulled window (rollback keeps the
/// window open while writes accumulate); pushing it as one message
/// would eventually exceed a network transport's frame/entry caps and
/// livelock replication. Bounded chunks (~a few hundred KB each) always
/// fit, and a mid-window failure just re-pulls — absorb is idempotent.
pub const SYNC_PUSH_CHUNK: usize = 4096;

/// Longest a failing site is skipped, in cycles (base backoff doubles
/// per consecutive failure up to this cap; jitter can add up to one
/// more base on top).
pub const SYNC_BACKOFF_CAP_CYCLES: u64 = 32;

/// Per-site pull backoff: consecutive failures double the number of
/// cycles the site is skipped (capped), plus deterministic seeded jitter
/// so multiple agents never re-probe a recovering site in lockstep.
struct PullBackoff {
    failures: u32,
    skip: u64,
    rng: SplitMix64,
}

impl PullBackoff {
    fn new(seed: u64, site: SiteId) -> PullBackoff {
        PullBackoff {
            failures: 0,
            skip: 0,
            rng: SplitMix64::new(seed).split(site.0 as u64),
        }
    }

    /// Returns true when the site should be skipped this cycle.
    fn should_skip(&mut self) -> bool {
        if self.skip > 0 {
            self.skip -= 1;
            return true;
        }
        false
    }

    fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
        let base = (1u64 << (self.failures - 1).min(63)).min(SYNC_BACKOFF_CAP_CYCLES);
        // Skip [base, 2*base) cycles: exponential with full-base jitter.
        self.skip = base + self.rng.range_u64(base);
    }

    fn record_success(&mut self) {
        self.failures = 0;
        self.skip = 0;
    }
}

/// The generic sync-agent loop: poll every site for its delta through
/// `transport`, integrate, and push to the others — the live and net
/// deployments run the exact same driver over their own transports.
///
/// Delivery is *acked*: pushes go through blocking `call` (the agent is
/// a background thread; the paper's agent is sequential anyway), because
/// a fire-and-forget `cast` may legitimately be dropped by a network
/// transport (bounded pump queue, unreachable peer) and the agent is the
/// replicated strategy's durability mechanism — it must not advance past
/// entries that never arrived. Failures roll the source watermark back
/// so the window is re-pulled and re-pushed next cycle (absorb is
/// idempotent, so double delivery is harmless).
///
/// A failed pull leaves the watermark untouched and puts the site on
/// capped exponential backoff with seeded jitter (a dead site is not
/// hammered every cycle; a recovering one is re-probed within a bounded,
/// de-synchronized number of cycles). Health counters land in `stats`.
pub fn drive_sync_agent<T: RegistryTransport>(
    transport: &T,
    sites: &[SiteId],
    interval: Duration,
    shutdown: &AtomicBool,
    stats: &SyncAgentStats,
) {
    let mut state = SyncAgentState::new(sites.to_vec());
    let mut backoff: Vec<PullBackoff> = sites
        .iter()
        .map(|&s| PullBackoff::new(0x5EED_A6E7, s))
        .collect();
    while !shutdown.load(Ordering::Acquire) {
        for (idx, &site) in sites.iter().enumerate() {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            if backoff[idx].should_skip() {
                stats.backoff_skips.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let prev_watermark = state.watermark(site);
            let pull_time = transport.now_micros();
            let resp = transport.call(
                site,
                RegistryRequest::DeltaPull {
                    since: prev_watermark,
                },
            );
            let delta = match resp {
                RegistryResponse::Delta { entries } => {
                    backoff[idx].record_success();
                    entries
                }
                _ => {
                    // Pull failed: keep the watermark, back the site off.
                    stats.pull_failures.fetch_add(1, Ordering::Relaxed);
                    backoff[idx].record_failure();
                    continue;
                }
            };
            // Back the watermark off by 1us so same-tick writes are
            // re-pulled (absorb is idempotent).
            let pushes = state.integrate(site, delta, pull_time.saturating_sub(1));
            'pushes: for push in pushes {
                for chunk in push.entries.chunks(SYNC_PUSH_CHUNK) {
                    let resp = transport.call(
                        push.target,
                        RegistryRequest::Absorb {
                            entries: chunk.to_vec(),
                        },
                    );
                    if resp.into_ack().is_err() {
                        stats.push_failures.fetch_add(1, Ordering::Relaxed);
                        state.rollback_watermark(site, prev_watermark);
                        break 'pushes; // re-pull this window next cycle
                    }
                }
            }
        }
        state.cycle_done();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn delay_line_executes_in_deadline_order() {
        let delay = DelayLine::new();
        std::thread::scope(|s| {
            s.spawn(|| delay.run_worker());
            let (tx, rx) = unbounded();
            let t1 = tx.clone();
            let t2 = tx.clone();
            delay.schedule(
                Duration::from_millis(20),
                Box::new(move || {
                    let _ = t1.send(2u32);
                }),
            );
            delay.schedule(
                Duration::from_millis(5),
                Box::new(move || {
                    let _ = t2.send(1u32);
                }),
            );
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
            delay.stop();
        });
    }

    #[test]
    fn failed_pull_keeps_the_watermark() {
        // A transport whose DeltaPull to site 1 always errors: the agent
        // must keep polling it with `since == 0` rather than advancing
        // past updates it never saw.
        struct Flaky {
            pulls: std::sync::Mutex<Vec<(SiteId, u64)>>,
        }
        impl RegistryTransport for Flaky {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                if let RegistryRequest::DeltaPull { since } = req {
                    self.pulls.lock().unwrap().push((target, since));
                }
                if target == SiteId(1) {
                    RegistryResponse::Error {
                        error: MetaError::Unavailable,
                    }
                } else {
                    RegistryResponse::Delta {
                        entries: Vec::new(),
                    }
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = Flaky {
            pulls: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let stats = SyncAgentStats::default();
        let sites = [SiteId(0), SiteId(1)];
        // Run enough cycles that site 1 is re-probed at least once
        // through its backoff; a watcher thread flips the flag.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(80));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(
                &transport,
                &sites,
                Duration::from_millis(2),
                &shutdown,
                &stats,
            );
        });
        let snap = stats.snapshot();
        assert!(snap.pull_failures >= 2, "failures counted: {snap:?}");
        assert!(snap.backoff_skips >= 1, "failing site backed off: {snap:?}");
        let pulls = transport.pulls.lock().unwrap();
        let site1: Vec<u64> = pulls
            .iter()
            .filter(|(s, _)| *s == SiteId(1))
            .map(|(_, since)| *since)
            .collect();
        assert!(site1.len() >= 2, "agent ran at least two cycles");
        assert!(
            site1.iter().all(|&w| w == 0),
            "failed pulls must not advance the watermark: {site1:?}"
        );
        let site0: Vec<u64> = pulls
            .iter()
            .filter(|(s, _)| *s == SiteId(0))
            .map(|(_, since)| *since)
            .collect();
        assert!(
            site0.iter().skip(1).all(|&w| w == 41),
            "successful pulls advance to pull_time-1: {site0:?}"
        );
    }

    #[test]
    fn failed_push_rolls_the_watermark_back() {
        use crate::entry::{FileLocation, RegistryEntry};
        // Site 0 always has a delta; pushes to site 1 always fail. The
        // agent must keep re-pulling site 0 from 0 (rollback), not
        // advance past entries site 1 never received.
        struct PushBlackhole {
            pulls: std::sync::Mutex<Vec<u64>>,
        }
        impl RegistryTransport for PushBlackhole {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                match req {
                    RegistryRequest::DeltaPull { since } => {
                        if target == SiteId(0) {
                            self.pulls.lock().unwrap().push(since);
                            RegistryResponse::Delta {
                                entries: vec![RegistryEntry::new(
                                    "f",
                                    1,
                                    FileLocation {
                                        site: SiteId(0),
                                        node: 0,
                                    },
                                    5,
                                )],
                            }
                        } else {
                            RegistryResponse::Delta {
                                entries: Vec::new(),
                            }
                        }
                    }
                    RegistryRequest::Absorb { .. } => RegistryResponse::Error {
                        error: MetaError::Unavailable,
                    },
                    _ => RegistryResponse::Ack,
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = PushBlackhole {
            pulls: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let stats = SyncAgentStats::default();
        let sites = [SiteId(0), SiteId(1)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(
                &transport,
                &sites,
                Duration::from_millis(5),
                &shutdown,
                &stats,
            );
        });
        let pulls = transport.pulls.lock().unwrap();
        assert!(pulls.len() >= 2, "agent ran at least two cycles");
        assert!(
            pulls.iter().all(|&w| w == 0),
            "undelivered pushes must roll the watermark back for a re-pull: {pulls:?}"
        );
        assert!(stats.snapshot().push_failures >= 2, "push failures counted");
    }

    #[test]
    fn pull_backoff_is_capped_exponential_with_jitter() {
        let mut b = PullBackoff::new(0x5EED_A6E7, SiteId(3));
        let mut prev_base = 0u64;
        for failure in 1..=12u32 {
            b.record_failure();
            let base = (1u64 << (failure - 1).min(63)).min(SYNC_BACKOFF_CAP_CYCLES);
            assert!(
                b.skip >= base && b.skip < 2 * base,
                "failure {failure}: skip {} outside [{base}, {})",
                b.skip,
                2 * base
            );
            assert!(base >= prev_base, "backoff never shrinks under failures");
            assert!(base <= SYNC_BACKOFF_CAP_CYCLES, "backoff capped");
            prev_base = base;
        }
        // Every skipped cycle decrements; success resets instantly.
        let skip = b.skip;
        assert!(b.should_skip());
        assert_eq!(b.skip, skip - 1);
        b.record_success();
        assert!(!b.should_skip());
        // Determinism: same seed + site → identical jitter sequence.
        let mut c = PullBackoff::new(0x5EED_A6E7, SiteId(3));
        let mut d = PullBackoff::new(0x5EED_A6E7, SiteId(3));
        for _ in 0..8 {
            c.record_failure();
            d.record_failure();
            assert_eq!(c.skip, d.skip);
        }
        // ...and different sites de-synchronize.
        let mut e = PullBackoff::new(0x5EED_A6E7, SiteId(0));
        let mut f = PullBackoff::new(0x5EED_A6E7, SiteId(1));
        let seqs: Vec<(u64, u64)> = (0..8)
            .map(|_| {
                e.record_failure();
                f.record_failure();
                (e.skip, f.skip)
            })
            .collect();
        assert!(
            seqs.iter().any(|(a, b)| a != b),
            "sites must not back off in lockstep: {seqs:?}"
        );
    }

    #[test]
    fn oversized_windows_push_in_bounded_chunks() {
        use crate::entry::{FileLocation, RegistryEntry};
        // A re-pulled window larger than one frame can carry must go out
        // as several bounded Absorbs, not one undeliverable message.
        let n_entries = SYNC_PUSH_CHUNK * 2 + 17;
        struct BigDelta {
            served: std::sync::atomic::AtomicBool,
            n: usize,
            absorb_sizes: std::sync::Mutex<Vec<usize>>,
        }
        impl RegistryTransport for BigDelta {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                match req {
                    RegistryRequest::DeltaPull { .. } => {
                        if target == SiteId(0) && !self.served.swap(true, Ordering::AcqRel) {
                            RegistryResponse::Delta {
                                entries: (0..self.n)
                                    .map(|i| {
                                        RegistryEntry::new(
                                            format!("f{i}"),
                                            1,
                                            FileLocation {
                                                site: SiteId(0),
                                                node: 0,
                                            },
                                            5,
                                        )
                                    })
                                    .collect(),
                            }
                        } else {
                            RegistryResponse::Delta {
                                entries: Vec::new(),
                            }
                        }
                    }
                    RegistryRequest::Absorb { entries } => {
                        self.absorb_sizes.lock().unwrap().push(entries.len());
                        RegistryResponse::Ack
                    }
                    _ => RegistryResponse::Ack,
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = BigDelta {
            served: std::sync::atomic::AtomicBool::new(false),
            n: n_entries,
            absorb_sizes: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let stats = SyncAgentStats::default();
        let sites = [SiteId(0), SiteId(1)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(
                &transport,
                &sites,
                Duration::from_millis(5),
                &shutdown,
                &stats,
            );
        });
        let sizes = transport.absorb_sizes.lock().unwrap();
        assert_eq!(
            sizes.iter().sum::<usize>(),
            n_entries,
            "window delivered whole"
        );
        assert!(
            sizes.iter().all(|&s| s <= SYNC_PUSH_CHUNK),
            "every push bounded: {sizes:?}"
        );
        assert!(sizes.len() >= 3, "window split into chunks: {sizes:?}");
    }
}
