//! The transport-generic service runtime.
//!
//! Every real deployment of the registry — threads + channels
//! ([`crate::live`]), TCP sockets (`geometa-net`), or any future backend
//! (UDS, real WAN) — needs the same machinery: registry instances per
//! site, a serving dispatch, tracked service threads, a delay line for
//! asynchronous propagation, sync-agent driving for the replicated
//! strategy, failure injection, and graceful shutdown. This module owns
//! all of it once; a deployment only supplies a [`ConnectionLayer`] — the
//! piece that moves `RegistryRequest`/`RegistryResponse` bytes between a
//! client and a site's server.
//!
//! Layering:
//!
//! ```text
//! StrategyClient<L::Transport>            (plans → RPCs)
//!         │ call / cast
//! L::Transport: RegistryTransport         (connection layer, client side)
//!         │ channel send / framed TCP / …
//! ConnectionLayer serving loops           (connection layer, server side)
//!         │ ServiceCore::serve
//! RegistryInstance                        (one per site; shared by sim,
//!                                          live and net deployments)
//! ```
//!
//! The DES binding (`geometa_experiments::simbind`) intentionally stays
//! outside: virtual time cannot run on real threads. Everything below the
//! transport — `RegistryInstance`, the strategies, `SyncAgentState` — is
//! the exact code the simulator drives, which is what makes live/net runs
//! comparable to simulated ones.

use crate::client::{ClientConfig, StrategyClient};
use crate::controller::ArchitectureController;
use crate::protocol::{RegistryRequest, RegistryResponse};
use crate::registry::RegistryInstance;
use crate::strategy::StrategyKind;
use crate::sync_agent::SyncAgentState;
use crate::transport::{InProcessTransport, RegistryTransport};
use crate::MetaError;
use geometa_sim::topology::{SiteId, Topology};
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration shared by every runtime-backed deployment.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Site layout and latency matrix.
    pub topology: Topology,
    /// Which of the four strategies to run.
    pub kind: StrategyKind,
    /// Shards per registry cache.
    pub shards: usize,
    /// Real-time interval between sync-agent cycles (replicated strategy).
    pub sync_interval: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            topology: Topology::azure_4dc(),
            kind: StrategyKind::DhtLocalReplica,
            shards: 16,
            sync_interval: Duration::from_millis(5),
        }
    }
}

/// A deferred job executed by the delay line.
struct DelayedJob {
    due: Instant,
    seq: u64,
    job: Box<dyn FnOnce() + Send>,
}

impl PartialEq for DelayedJob {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedJob {}
impl PartialOrd for DelayedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (due, seq).
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Executes closures at deadlines; the asynchronous-propagation spine.
pub struct DelayLine {
    heap: Mutex<BinaryHeap<DelayedJob>>,
    cond: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
}

impl DelayLine {
    /// A fresh delay line (the runtime spawns its worker).
    pub fn new() -> Arc<DelayLine> {
        Arc::new(DelayLine {
            heap: Mutex::new(BinaryHeap::new()),
            cond: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Schedule `job` to run after `delay`.
    pub fn schedule(&self, delay: Duration, job: Box<dyn FnOnce() + Send>) {
        let due = Instant::now() + delay;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().push(DelayedJob { due, seq, job });
        self.cond.notify_one();
    }

    /// The worker loop: pops jobs in deadline order until [`Self::stop`].
    pub fn run_worker(self: &Arc<Self>) {
        loop {
            let job = {
                let mut heap = self.heap.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    match heap.peek() {
                        None => {
                            self.cond.wait(&mut heap);
                        }
                        Some(top) => {
                            let now = Instant::now();
                            if top.due <= now {
                                break heap.pop().expect("peeked job exists");
                            }
                            let due = top.due;
                            self.cond.wait_until(&mut heap, due);
                        }
                    }
                }
            };
            (job.job)();
        }
    }

    /// Stop the worker; pending jobs are dropped.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cond.notify_all();
    }
}

/// Everything a connection layer serves from: the registry instances, the
/// strategy controller, the logical clock, the delay line and the
/// shutdown flag. Shared (via `Arc`) between the runtime, the layer's
/// serving threads, and client transports.
pub struct ServiceCore {
    topology: Arc<Topology>,
    registries: HashMap<SiteId, Arc<RegistryInstance>>,
    controller: Arc<ArchitectureController>,
    delay: Arc<DelayLine>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
}

impl ServiceCore {
    fn new(config: &RuntimeConfig) -> Arc<ServiceCore> {
        let topology = Arc::new(config.topology.clone());
        let sites: Vec<SiteId> = topology.site_ids().collect();
        let registries = sites
            .iter()
            .map(|&s| (s, Arc::new(RegistryInstance::new(s, config.shards))))
            .collect();
        Arc::new(ServiceCore {
            topology,
            registries,
            controller: Arc::new(ArchitectureController::with_kind(config.kind, sites)),
            delay: DelayLine::new(),
            epoch: Instant::now(),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The strategy controller (runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        &self.controller
    }

    /// The shared delay line (asynchronous propagation).
    pub fn delay_line(&self) -> &Arc<DelayLine> {
        &self.delay
    }

    /// Monotonic logical clock in microseconds since runtime start.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Whether shutdown has begun (serving loops poll this).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.registries.get(&site)
    }

    /// Serve one request against `site`'s registry — the single dispatch
    /// every connection layer calls, so registry semantics live in exactly
    /// one place ([`InProcessTransport::serve`]).
    pub fn serve(&self, site: SiteId, req: RegistryRequest) -> RegistryResponse {
        match self.registries.get(&site) {
            Some(r) => InProcessTransport::serve(r, req, self.now_micros()),
            None => RegistryResponse::Error {
                error: MetaError::Unavailable,
            },
        }
    }

    /// Fault injection: kill `site`'s primary cache mid-traffic. The
    /// serving loops keep running; the next operation drives the HaCache
    /// primary→replica promotion. Returns whether the site hosts a
    /// registry.
    pub fn fail_primary(&self, site: SiteId) -> bool {
        match self.registries.get(&site) {
            Some(r) => {
                r.fail_primary();
                true
            }
            None => false,
        }
    }
}

/// Tracked thread spawning: every thread a layer starts is joined by
/// [`ServiceRuntime::shutdown`], which is what makes the no-leaked-threads
/// guarantee checkable.
pub struct Spawner {
    threads: Vec<JoinHandle<()>>,
}

impl Spawner {
    /// Spawn a named service thread owned by the runtime.
    pub fn spawn(&mut self, name: impl Into<String>, f: impl FnOnce() + Send + 'static) {
        self.threads.push(
            // geometa-lint: allow(untracked-thread) Spawner IS the tracking mechanism: every handle lands in self.threads and ServiceRuntime::shutdown joins them all
            std::thread::Builder::new()
                .name(name.into())
                .spawn(f)
                .expect("spawn service thread"),
        );
    }
}

/// The piece a deployment supplies: how request/response bytes move
/// between a client and a site's server. Implementations: channels +
/// injected WAN sleep (`crate::live::ChannelLayer`), framed TCP
/// (`geometa_net::TcpLayer`).
pub trait ConnectionLayer: Send {
    /// The client-side transport this layer hands to [`StrategyClient`]s.
    type Transport: RegistryTransport + 'static;

    /// Start the serving side for every site in `core`'s topology. All
    /// threads must go through `spawner` so shutdown can join them.
    fn start(&mut self, core: &Arc<ServiceCore>, spawner: &mut Spawner);

    /// A client transport viewed from `site`. Returned as `Arc` so layers
    /// whose transports are location-independent (TCP: routing is per
    /// target, and the pooled connections + cast pump are expensive) can
    /// hand every client a clone of one shared instance.
    fn transport(&self, core: &Arc<ServiceCore>, site: SiteId) -> Arc<Self::Transport>;

    /// Called once at shutdown, after the core's shutdown flag is set:
    /// unblock any serving threads parked in a blocking wait (channel
    /// `recv`, socket `accept`) so they can observe the flag and exit.
    fn unblock(&self);
}

/// A running deployment: the [`ServiceCore`], the connection layer, and
/// every service thread (serving loops, delay line, sync agent).
pub struct ServiceRuntime<L: ConnectionLayer> {
    core: Arc<ServiceCore>,
    layer: L,
    threads: Vec<JoinHandle<()>>,
    sync_interval: Duration,
}

impl<L: ConnectionLayer> ServiceRuntime<L> {
    /// Boot registries for every site, start the layer's serving side, the
    /// delay-line worker and — for the replicated strategy — the sync
    /// agent (driven over the layer's own transport, so propagation pays
    /// the same latency clients do).
    pub fn start(config: RuntimeConfig, mut layer: L) -> ServiceRuntime<L> {
        let core = ServiceCore::new(&config);
        let mut spawner = Spawner {
            threads: Vec::new(),
        };
        {
            let delay = Arc::clone(core.delay_line());
            spawner.spawn("delay-line", move || delay.run_worker());
        }
        layer.start(&core, &mut spawner);
        let mut runtime = ServiceRuntime {
            core,
            layer,
            threads: spawner.threads,
            sync_interval: config.sync_interval,
        };
        if config.kind == StrategyKind::Replicated {
            runtime.spawn_sync_agent();
        }
        runtime
    }

    fn spawn_sync_agent(&mut self) {
        let sites: Vec<SiteId> = self.core.topology.site_ids().collect();
        let agent_site = sites[0];
        let transport = self.layer.transport(&self.core, agent_site);
        let shutdown = Arc::clone(&self.core.shutdown);
        let interval = self.sync_interval;
        let mut spawner = Spawner {
            threads: std::mem::take(&mut self.threads),
        };
        spawner.spawn("sync-agent", move || {
            drive_sync_agent(&*transport, &sites, interval, &shutdown)
        });
        self.threads = spawner.threads;
    }

    /// The shared service core.
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// The connection layer (e.g. to read bound socket addresses).
    pub fn layer(&self) -> &L {
        &self.layer
    }

    /// Create a client for a node at `site`.
    pub fn client(&self, site: SiteId, node: u32) -> StrategyClient<L::Transport> {
        StrategyClient::new(
            self.layer.transport(&self.core, site),
            Arc::clone(&self.core.controller),
            ClientConfig { site, node },
        )
    }

    /// The strategy controller (for runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        &self.core.controller
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.core.registry(site)
    }

    /// Fault injection; see [`ServiceCore::fail_primary`].
    pub fn inject_registry_failure(&self, site: SiteId) -> bool {
        self.core.fail_primary(site)
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Stop and join every service thread. Idempotent; returns the number
    /// of threads joined (0 on a repeated call).
    pub fn shutdown(mut self) -> usize {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> usize {
        if self.core.shutdown.swap(true, Ordering::AcqRel) {
            return 0;
        }
        self.core.delay.stop();
        self.layer.unblock();
        let joined = self.threads.len();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        joined
    }
}

impl<L: ConnectionLayer> Drop for ServiceRuntime<L> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Entries per Absorb push issued by the sync agent. A recovering site
/// can face an arbitrarily large re-pulled window (rollback keeps the
/// window open while writes accumulate); pushing it as one message
/// would eventually exceed a network transport's frame/entry caps and
/// livelock replication. Bounded chunks (~a few hundred KB each) always
/// fit, and a mid-window failure just re-pulls — absorb is idempotent.
pub const SYNC_PUSH_CHUNK: usize = 4096;

/// The generic sync-agent loop: poll every site for its delta through
/// `transport`, integrate, and push to the others — the live and net
/// deployments run the exact same driver over their own transports.
///
/// Delivery is *acked*: pushes go through blocking `call` (the agent is
/// a background thread; the paper's agent is sequential anyway), because
/// a fire-and-forget `cast` may legitimately be dropped by a network
/// transport (bounded pump queue, unreachable peer) and the agent is the
/// replicated strategy's durability mechanism — it must not advance past
/// entries that never arrived. Failures roll the source watermark back
/// so the window is re-pulled and re-pushed next cycle (absorb is
/// idempotent, so double delivery is harmless). A failed pull likewise
/// leaves the watermark untouched.
pub fn drive_sync_agent<T: RegistryTransport>(
    transport: &T,
    sites: &[SiteId],
    interval: Duration,
    shutdown: &AtomicBool,
) {
    let mut state = SyncAgentState::new(sites.to_vec());
    while !shutdown.load(Ordering::Acquire) {
        for &site in sites {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            let prev_watermark = state.watermark(site);
            let pull_time = transport.now_micros();
            let resp = transport.call(
                site,
                RegistryRequest::DeltaPull {
                    since: prev_watermark,
                },
            );
            let delta = match resp {
                RegistryResponse::Delta { entries } => entries,
                _ => continue, // pull failed: keep the watermark, retry next cycle
            };
            // Back the watermark off by 1us so same-tick writes are
            // re-pulled (absorb is idempotent).
            let pushes = state.integrate(site, delta, pull_time.saturating_sub(1));
            'pushes: for push in pushes {
                for chunk in push.entries.chunks(SYNC_PUSH_CHUNK) {
                    let resp = transport.call(
                        push.target,
                        RegistryRequest::Absorb {
                            entries: chunk.to_vec(),
                        },
                    );
                    if resp.into_ack().is_err() {
                        state.rollback_watermark(site, prev_watermark);
                        break 'pushes; // re-pull this window next cycle
                    }
                }
            }
        }
        state.cycle_done();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn delay_line_executes_in_deadline_order() {
        let delay = DelayLine::new();
        std::thread::scope(|s| {
            s.spawn(|| delay.run_worker());
            let (tx, rx) = unbounded();
            let t1 = tx.clone();
            let t2 = tx.clone();
            delay.schedule(
                Duration::from_millis(20),
                Box::new(move || {
                    let _ = t1.send(2u32);
                }),
            );
            delay.schedule(
                Duration::from_millis(5),
                Box::new(move || {
                    let _ = t2.send(1u32);
                }),
            );
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
            delay.stop();
        });
    }

    #[test]
    fn failed_pull_keeps_the_watermark() {
        // A transport whose DeltaPull to site 1 always errors: the agent
        // must keep polling it with `since == 0` rather than advancing
        // past updates it never saw.
        struct Flaky {
            pulls: std::sync::Mutex<Vec<(SiteId, u64)>>,
        }
        impl RegistryTransport for Flaky {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                if let RegistryRequest::DeltaPull { since } = req {
                    self.pulls.lock().unwrap().push((target, since));
                }
                if target == SiteId(1) {
                    RegistryResponse::Error {
                        error: MetaError::Unavailable,
                    }
                } else {
                    RegistryResponse::Delta {
                        entries: Vec::new(),
                    }
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = Flaky {
            pulls: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let sites = [SiteId(0), SiteId(1)];
        // Run exactly two cycles by flipping the flag from a watcher
        // thread after a short delay.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(&transport, &sites, Duration::from_millis(5), &shutdown);
        });
        let pulls = transport.pulls.lock().unwrap();
        let site1: Vec<u64> = pulls
            .iter()
            .filter(|(s, _)| *s == SiteId(1))
            .map(|(_, since)| *since)
            .collect();
        assert!(site1.len() >= 2, "agent ran at least two cycles");
        assert!(
            site1.iter().all(|&w| w == 0),
            "failed pulls must not advance the watermark: {site1:?}"
        );
        let site0: Vec<u64> = pulls
            .iter()
            .filter(|(s, _)| *s == SiteId(0))
            .map(|(_, since)| *since)
            .collect();
        assert!(
            site0.iter().skip(1).all(|&w| w == 41),
            "successful pulls advance to pull_time-1: {site0:?}"
        );
    }

    #[test]
    fn failed_push_rolls_the_watermark_back() {
        use crate::entry::{FileLocation, RegistryEntry};
        // Site 0 always has a delta; pushes to site 1 always fail. The
        // agent must keep re-pulling site 0 from 0 (rollback), not
        // advance past entries site 1 never received.
        struct PushBlackhole {
            pulls: std::sync::Mutex<Vec<u64>>,
        }
        impl RegistryTransport for PushBlackhole {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                match req {
                    RegistryRequest::DeltaPull { since } => {
                        if target == SiteId(0) {
                            self.pulls.lock().unwrap().push(since);
                            RegistryResponse::Delta {
                                entries: vec![RegistryEntry::new(
                                    "f",
                                    1,
                                    FileLocation {
                                        site: SiteId(0),
                                        node: 0,
                                    },
                                    5,
                                )],
                            }
                        } else {
                            RegistryResponse::Delta {
                                entries: Vec::new(),
                            }
                        }
                    }
                    RegistryRequest::Absorb { .. } => RegistryResponse::Error {
                        error: MetaError::Unavailable,
                    },
                    _ => RegistryResponse::Ack,
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = PushBlackhole {
            pulls: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let sites = [SiteId(0), SiteId(1)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(30));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(&transport, &sites, Duration::from_millis(5), &shutdown);
        });
        let pulls = transport.pulls.lock().unwrap();
        assert!(pulls.len() >= 2, "agent ran at least two cycles");
        assert!(
            pulls.iter().all(|&w| w == 0),
            "undelivered pushes must roll the watermark back for a re-pull: {pulls:?}"
        );
    }

    #[test]
    fn oversized_windows_push_in_bounded_chunks() {
        use crate::entry::{FileLocation, RegistryEntry};
        // A re-pulled window larger than one frame can carry must go out
        // as several bounded Absorbs, not one undeliverable message.
        let n_entries = SYNC_PUSH_CHUNK * 2 + 17;
        struct BigDelta {
            served: std::sync::atomic::AtomicBool,
            n: usize,
            absorb_sizes: std::sync::Mutex<Vec<usize>>,
        }
        impl RegistryTransport for BigDelta {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                match req {
                    RegistryRequest::DeltaPull { .. } => {
                        if target == SiteId(0) && !self.served.swap(true, Ordering::AcqRel) {
                            RegistryResponse::Delta {
                                entries: (0..self.n)
                                    .map(|i| {
                                        RegistryEntry::new(
                                            format!("f{i}"),
                                            1,
                                            FileLocation {
                                                site: SiteId(0),
                                                node: 0,
                                            },
                                            5,
                                        )
                                    })
                                    .collect(),
                            }
                        } else {
                            RegistryResponse::Delta {
                                entries: Vec::new(),
                            }
                        }
                    }
                    RegistryRequest::Absorb { entries } => {
                        self.absorb_sizes.lock().unwrap().push(entries.len());
                        RegistryResponse::Ack
                    }
                    _ => RegistryResponse::Ack,
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                42
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0), SiteId(1)]
            }
        }
        let transport = BigDelta {
            served: std::sync::atomic::AtomicBool::new(false),
            n: n_entries,
            absorb_sizes: std::sync::Mutex::new(Vec::new()),
        };
        let shutdown = AtomicBool::new(false);
        let sites = [SiteId(0), SiteId(1)];
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                shutdown.store(true, Ordering::Release);
            });
            drive_sync_agent(&transport, &sites, Duration::from_millis(5), &shutdown);
        });
        let sizes = transport.absorb_sizes.lock().unwrap();
        assert_eq!(
            sizes.iter().sum::<usize>(),
            n_entries,
            "window delivered whole"
        );
        assert!(
            sizes.iter().all(|&s| s <= SYNC_PUSH_CHUNK),
            "every push bounded: {sizes:?}"
        );
        assert!(sizes.len() >= 3, "window split into chunks: {sizes:?}");
    }
}
