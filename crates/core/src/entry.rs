//! The registry entry: minimal per-file metadata, plus its binary codec.
//!
//! Following the paper (§III-B), an entry stores only what is needed to
//! locate a file — no POSIX permissions or ownership, which scientific
//! workflows never consult during execution. The paper's base case is "a
//! file uniquely identified by its name and containing a set of its
//! locations within the network"; we add the size and producing task, which
//! the provisioning layer (§III-C) uses to plan data movement.
//!
//! Entries are serialized with a small hand-rolled length-prefixed binary
//! codec (`bytes`-based) so the cache tier stores opaque `Bytes` and the
//! network model charges realistic message sizes.

use crate::MetaError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use geometa_sim::topology::SiteId;

/// Where one replica of a file's data lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileLocation {
    /// Datacenter holding the data.
    pub site: SiteId,
    /// Node within the datacenter (execution-node index).
    pub node: u32,
}

/// Metadata for one workflow file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Unique file name (the registry key).
    pub name: String,
    /// File size in bytes (workflow files are typically small; §II-A).
    pub size: u64,
    /// All known locations of the file's data.
    pub locations: Vec<FileLocation>,
    /// Name of the task that produced the file, if known (provenance).
    pub producer: Option<String>,
    /// Logical creation timestamp (microseconds).
    pub created_at: u64,
}

impl RegistryEntry {
    /// A new entry with a single location.
    pub fn new(name: impl Into<String>, size: u64, location: FileLocation, now: u64) -> Self {
        RegistryEntry {
            name: name.into(),
            size,
            locations: vec![location],
            producer: None,
            created_at: now,
        }
    }

    /// Attach the producing task (builder-style).
    pub fn with_producer(mut self, producer: impl Into<String>) -> Self {
        self.producer = Some(producer.into());
        self
    }

    /// Add a location if not already present; returns true if added.
    pub fn add_location(&mut self, loc: FileLocation) -> bool {
        if self.locations.contains(&loc) {
            false
        } else {
            self.locations.push(loc);
            true
        }
    }

    /// Whether any replica of the data lives at `site`.
    pub fn available_at(&self, site: SiteId) -> bool {
        self.locations.iter().any(|l| l.site == site)
    }

    /// Serialize to the wire/cache representation.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        put_str(&mut buf, &self.name);
        buf.put_u64_le(self.size);
        buf.put_u32_le(self.locations.len() as u32);
        for loc in &self.locations {
            buf.put_u16_le(loc.site.0);
            buf.put_u32_le(loc.node);
        }
        match &self.producer {
            Some(p) => {
                buf.put_u8(1);
                put_str(&mut buf, p);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64_le(self.created_at);
        buf.freeze()
    }

    /// Deserialize from the wire/cache representation.
    pub fn from_bytes(mut buf: Bytes) -> Result<RegistryEntry, MetaError> {
        let name = get_str(&mut buf)?;
        if buf.remaining() < 8 + 4 {
            return Err(MetaError::Codec("truncated entry header".into()));
        }
        let size = buf.get_u64_le();
        let n_locs = buf.get_u32_le() as usize;
        if n_locs > 1_000_000 {
            return Err(MetaError::Codec(format!(
                "implausible location count {n_locs}"
            )));
        }
        if buf.remaining() < n_locs * 6 {
            return Err(MetaError::Codec("truncated locations".into()));
        }
        let mut locations = Vec::with_capacity(n_locs);
        for _ in 0..n_locs {
            let site = SiteId(buf.get_u16_le());
            let node = buf.get_u32_le();
            locations.push(FileLocation { site, node });
        }
        if buf.remaining() < 1 {
            return Err(MetaError::Codec("truncated producer flag".into()));
        }
        let producer = match buf.get_u8() {
            0 => None,
            1 => Some(get_str(&mut buf)?),
            other => return Err(MetaError::Codec(format!("bad producer tag {other}"))),
        };
        if buf.remaining() < 8 {
            return Err(MetaError::Codec("truncated timestamp".into()));
        }
        let created_at = buf.get_u64_le();
        Ok(RegistryEntry {
            name,
            size,
            locations,
            producer,
            created_at,
        })
    }

    /// Exact serialized size in bytes (used by the network model).
    pub fn encoded_len(&self) -> usize {
        4 + self.name.len()
            + 8
            + 4
            + self.locations.len() * 6
            + 1
            + self.producer.as_ref().map_or(0, |p| 4 + p.len())
            + 8
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, MetaError> {
    if buf.remaining() < 4 {
        return Err(MetaError::Codec("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if len > 16 * 1024 * 1024 {
        return Err(MetaError::Codec(format!("implausible string length {len}")));
    }
    if buf.remaining() < len {
        return Err(MetaError::Codec("truncated string body".into()));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|e| MetaError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistryEntry {
        RegistryEntry {
            name: "montage/proj_0042.fits".to_string(),
            size: 190 * 1024,
            locations: vec![
                FileLocation {
                    site: SiteId(0),
                    node: 7,
                },
                FileLocation {
                    site: SiteId(2),
                    node: 19,
                },
            ],
            producer: Some("mProject-42".to_string()),
            created_at: 123_456_789,
        }
    }

    #[test]
    fn roundtrip_full_entry() {
        let e = sample();
        let b = e.to_bytes();
        assert_eq!(b.len(), e.encoded_len());
        let back = RegistryEntry::from_bytes(b).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn roundtrip_minimal_entry() {
        let e = RegistryEntry::new(
            "f",
            0,
            FileLocation {
                site: SiteId(3),
                node: 0,
            },
            0,
        );
        let back = RegistryEntry::from_bytes(e.to_bytes()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.producer, None);
    }

    #[test]
    fn roundtrip_empty_locations() {
        let mut e = sample();
        e.locations.clear();
        let back = RegistryEntry::from_bytes(e.to_bytes()).unwrap();
        assert!(back.locations.is_empty());
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        let full = sample().to_bytes();
        for cut in 0..full.len() {
            let sliced = full.slice(0..cut);
            let res = RegistryEntry::from_bytes(sliced);
            assert!(res.is_err(), "truncation at {cut} should fail");
        }
    }

    #[test]
    fn garbage_payload_errors() {
        let garbage = Bytes::from(vec![0xFFu8; 64]);
        assert!(RegistryEntry::from_bytes(garbage).is_err());
    }

    #[test]
    fn add_location_dedups() {
        let mut e = sample();
        let loc = FileLocation {
            site: SiteId(0),
            node: 7,
        };
        assert!(
            !e.add_location(loc),
            "existing location should not duplicate"
        );
        assert_eq!(e.locations.len(), 2);
        assert!(e.add_location(FileLocation {
            site: SiteId(1),
            node: 1
        }));
        assert_eq!(e.locations.len(), 3);
    }

    #[test]
    fn availability_by_site() {
        let e = sample();
        assert!(e.available_at(SiteId(0)));
        assert!(e.available_at(SiteId(2)));
        assert!(!e.available_at(SiteId(1)));
    }

    #[test]
    fn encoded_len_is_exact_for_many_shapes() {
        for n_locs in [0usize, 1, 5, 50] {
            for producer in [None, Some("task".to_string())] {
                let e = RegistryEntry {
                    name: "x".repeat(n_locs + 1),
                    size: 42,
                    locations: (0..n_locs)
                        .map(|i| FileLocation {
                            site: SiteId(i as u16),
                            node: i as u32,
                        })
                        .collect(),
                    producer: producer.clone(),
                    created_at: 7,
                };
                assert_eq!(e.to_bytes().len(), e.encoded_len());
            }
        }
    }

    #[test]
    fn entries_are_small_like_the_paper_says() {
        // Metadata must stay tiny relative to even "small" files.
        let e = sample();
        assert!(
            e.encoded_len() < 128,
            "entry unexpectedly large: {}",
            e.encoded_len()
        );
    }
}
