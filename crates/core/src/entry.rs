//! The registry entry: minimal per-file metadata, plus its binary codec.
//!
//! Following the paper (§III-B), an entry stores only what is needed to
//! locate a file — no POSIX permissions or ownership, which scientific
//! workflows never consult during execution. The paper's base case is "a
//! file uniquely identified by its name and containing a set of its
//! locations within the network"; we add the size and producing task, which
//! the provisioning layer (§III-C) uses to plan data movement.
//!
//! Entries are serialized with a small hand-rolled length-prefixed binary
//! codec (`bytes`-based) so the cache tier stores opaque `Bytes` and the
//! network model charges realistic message sizes.
//!
//! # Zero-allocation decode
//!
//! Strings are held as [`MetaStr`] — a UTF-8-validated view into a shared
//! `Bytes` buffer — and locations in an inline-small [`Locations`] vector,
//! so decoding an entry from the wire allocates nothing for its name or
//! producer (they slice the wire buffer) and nothing for up to
//! [`Locations::INLINE`] locations. Since registry traffic is dominated by
//! decode-merge-encode cycles over tiny entries, this removes two `String`
//! and one `Vec` allocation from nearly every metadata operation.

use crate::MetaError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use geometa_cache::Key;
use geometa_sim::topology::SiteId;
use std::fmt;

/// An immutable UTF-8 string backed by a shared [`Bytes`] buffer.
///
/// Cloning is O(1). Decoding slices the wire buffer instead of copying.
/// Derefs to `&str`, so call sites treat it exactly like a string.
#[derive(Clone, Default)]
pub struct MetaStr(Bytes);

impl MetaStr {
    /// Wrap validated bytes. Errors on invalid UTF-8.
    pub fn from_utf8(bytes: Bytes) -> Result<MetaStr, MetaError> {
        std::str::from_utf8(&bytes).map_err(|e| MetaError::Codec(e.to_string()))?;
        Ok(MetaStr(bytes))
    }

    /// The string view.
    #[inline]
    pub fn as_str(&self) -> &str {
        // SAFETY: every constructor validates UTF-8 (`from_utf8` checks;
        // the `From` impls start from `str`/`String`), and `Bytes` is
        // immutable, so the invariant holds for the value's lifetime.
        unsafe { std::str::from_utf8_unchecked(&self.0) }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying shared buffer.
    #[inline]
    pub fn as_bytes(&self) -> &Bytes {
        &self.0
    }
}

impl From<&str> for MetaStr {
    fn from(s: &str) -> MetaStr {
        MetaStr(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<String> for MetaStr {
    fn from(s: String) -> MetaStr {
        MetaStr(Bytes::from(s.into_bytes()))
    }
}

impl From<&String> for MetaStr {
    fn from(s: &String) -> MetaStr {
        MetaStr::from(s.as_str())
    }
}

impl std::ops::Deref for MetaStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for MetaStr {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for MetaStr {
    #[inline]
    fn eq(&self, other: &MetaStr) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for MetaStr {}

impl PartialEq<str> for MetaStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<&str> for MetaStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}
impl PartialEq<String> for MetaStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}
impl PartialEq<MetaStr> for str {
    fn eq(&self, other: &MetaStr) -> bool {
        self == other.as_str()
    }
}
impl PartialEq<MetaStr> for &str {
    fn eq(&self, other: &MetaStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialOrd for MetaStr {
    fn partial_cmp(&self, other: &MetaStr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MetaStr {
    fn cmp(&self, other: &MetaStr) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for MetaStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Display for MetaStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for MetaStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// Where one replica of a file's data lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileLocation {
    /// Datacenter holding the data.
    pub site: SiteId,
    /// Node within the datacenter (execution-node index).
    pub node: u32,
}

const NO_LOCATION: FileLocation = FileLocation {
    site: SiteId(0),
    node: 0,
};

/// An inline-small vector of [`FileLocation`]s.
///
/// Workflow files overwhelmingly have one or two replicas (origin plus at
/// most a lazy copy at the hash owner), so up to [`Self::INLINE`] locations
/// live inline in the entry with no heap allocation; larger sets spill to
/// a `Vec`. Derefs to `&[FileLocation]`, so indexing, iteration and
/// sorting work as on a plain vector.
#[derive(Clone)]
pub enum Locations {
    /// Up to [`Self::INLINE`] locations stored inline.
    Inline {
        /// Number of live elements in `buf`.
        len: u8,
        /// Inline storage; elements past `len` are padding.
        buf: [FileLocation; Locations::INLINE],
    },
    /// Spilled storage for larger location sets.
    Heap(Vec<FileLocation>),
}

impl Locations {
    /// Number of locations stored without heap allocation.
    pub const INLINE: usize = 4;

    /// An empty set.
    pub fn new() -> Locations {
        Locations::Inline {
            len: 0,
            buf: [NO_LOCATION; Self::INLINE],
        }
    }

    /// A single-location set (the common case: the file's origin).
    pub fn one(loc: FileLocation) -> Locations {
        let mut buf = [NO_LOCATION; Self::INLINE];
        buf[0] = loc;
        Locations::Inline { len: 1, buf }
    }

    /// An empty set that will hold `n` locations, pre-spilled if `n`
    /// exceeds the inline capacity.
    pub fn with_capacity(n: usize) -> Locations {
        if n <= Self::INLINE {
            Locations::new()
        } else {
            Locations::Heap(Vec::with_capacity(n))
        }
    }

    /// Append a location (unconditionally; see
    /// [`RegistryEntry::add_location`] for the deduplicating variant).
    pub fn push(&mut self, loc: FileLocation) {
        match self {
            Locations::Inline { len, buf } => {
                if (*len as usize) < Self::INLINE {
                    buf[*len as usize] = loc;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(Self::INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(loc);
                    *self = Locations::Heap(v);
                }
            }
            Locations::Heap(v) => v.push(loc),
        }
    }

    /// The locations as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[FileLocation] {
        match self {
            Locations::Inline { len, buf } => &buf[..*len as usize],
            Locations::Heap(v) => v,
        }
    }

    /// The locations as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [FileLocation] {
        match self {
            Locations::Inline { len, buf } => &mut buf[..*len as usize],
            Locations::Heap(v) => v,
        }
    }

    /// Remove every location.
    pub fn clear(&mut self) {
        *self = Locations::new();
    }

    /// Sort in place (sites then nodes; the codec's canonical order).
    pub fn sort(&mut self) {
        self.as_mut_slice().sort_unstable();
    }
}

impl Default for Locations {
    fn default() -> Self {
        Locations::new()
    }
}

impl std::ops::Deref for Locations {
    type Target = [FileLocation];
    #[inline]
    fn deref(&self) -> &[FileLocation] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for Locations {
    #[inline]
    fn deref_mut(&mut self) -> &mut [FileLocation] {
        self.as_mut_slice()
    }
}

impl PartialEq for Locations {
    fn eq(&self, other: &Locations) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Locations {}

impl fmt::Debug for Locations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<FileLocation> for Locations {
    fn from_iter<I: IntoIterator<Item = FileLocation>>(iter: I) -> Locations {
        let mut out = Locations::new();
        for loc in iter {
            out.push(loc);
        }
        out
    }
}

impl<'a> IntoIterator for &'a Locations {
    type Item = &'a FileLocation;
    type IntoIter = std::slice::Iter<'a, FileLocation>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Metadata for one workflow file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Unique file name (the registry key).
    pub name: MetaStr,
    /// File size in bytes (workflow files are typically small; §II-A).
    pub size: u64,
    /// All known locations of the file's data.
    pub locations: Locations,
    /// Name of the task that produced the file, if known (provenance).
    pub producer: Option<MetaStr>,
    /// Logical creation timestamp (microseconds).
    pub created_at: u64,
}

impl RegistryEntry {
    /// A new entry with a single location.
    pub fn new(name: impl Into<MetaStr>, size: u64, location: FileLocation, now: u64) -> Self {
        RegistryEntry {
            name: name.into(),
            size,
            locations: Locations::one(location),
            producer: None,
            created_at: now,
        }
    }

    /// Attach the producing task (builder-style).
    pub fn with_producer(mut self, producer: impl Into<MetaStr>) -> Self {
        self.producer = Some(producer.into());
        self
    }

    /// Add a location if not already present; returns true if added.
    pub fn add_location(&mut self, loc: FileLocation) -> bool {
        if self.locations.contains(&loc) {
            false
        } else {
            self.locations.push(loc);
            true
        }
    }

    /// Whether any replica of the data lives at `site`.
    pub fn available_at(&self, site: SiteId) -> bool {
        self.locations.iter().any(|l| l.site == site)
    }

    /// The interned cache key for this entry (one allocation + one hash;
    /// reused across a whole OCC retry loop by the registry).
    pub fn cache_key(&self) -> Key {
        Key::new(&self.name)
    }

    /// Serialize to the wire/cache representation.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        put_str(&mut buf, &self.name);
        buf.put_u64_le(self.size);
        buf.put_u32_le(self.locations.len() as u32);
        for loc in &self.locations {
            buf.put_u16_le(loc.site.0);
            buf.put_u32_le(loc.node);
        }
        match &self.producer {
            Some(p) => {
                buf.put_u8(1);
                put_str(&mut buf, p);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64_le(self.created_at);
        buf.freeze()
    }

    /// Deserialize from the wire/cache representation.
    ///
    /// Zero-copy for strings: `name` and `producer` are slices into `buf`'s
    /// shared storage, not fresh allocations; up to [`Locations::INLINE`]
    /// locations decode without a heap allocation either.
    pub fn from_bytes(mut buf: Bytes) -> Result<RegistryEntry, MetaError> {
        let name = get_str(&mut buf)?;
        if buf.remaining() < 8 + 4 {
            return Err(MetaError::Codec("truncated entry header".into()));
        }
        let size = buf.get_u64_le();
        let n_locs = buf.get_u32_le() as usize;
        if n_locs > 1_000_000 {
            return Err(MetaError::Codec(format!(
                "implausible location count {n_locs}"
            )));
        }
        if buf.remaining() < n_locs * 6 {
            return Err(MetaError::Codec("truncated locations".into()));
        }
        let mut locations = Locations::with_capacity(n_locs);
        for _ in 0..n_locs {
            let site = SiteId(buf.get_u16_le());
            let node = buf.get_u32_le();
            locations.push(FileLocation { site, node });
        }
        if buf.remaining() < 1 {
            return Err(MetaError::Codec("truncated producer flag".into()));
        }
        let producer = match buf.get_u8() {
            0 => None,
            1 => Some(get_str(&mut buf)?),
            other => return Err(MetaError::Codec(format!("bad producer tag {other}"))),
        };
        if buf.remaining() < 8 {
            return Err(MetaError::Codec("truncated timestamp".into()));
        }
        let created_at = buf.get_u64_le();
        Ok(RegistryEntry {
            name,
            size,
            locations,
            producer,
            created_at,
        })
    }

    /// Exact serialized size in bytes (used by the network model).
    pub fn encoded_len(&self) -> usize {
        4 + self.name.len()
            + 8
            + 4
            + self.locations.len() * 6
            + 1
            + self.producer.as_ref().map_or(0, |p| 4 + p.len())
            + 8
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<MetaStr, MetaError> {
    if buf.remaining() < 4 {
        return Err(MetaError::Codec("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if len > 16 * 1024 * 1024 {
        return Err(MetaError::Codec(format!("implausible string length {len}")));
    }
    if buf.remaining() < len {
        return Err(MetaError::Codec("truncated string body".into()));
    }
    MetaStr::from_utf8(buf.split_to(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistryEntry {
        RegistryEntry {
            name: "montage/proj_0042.fits".into(),
            size: 190 * 1024,
            locations: [
                FileLocation {
                    site: SiteId(0),
                    node: 7,
                },
                FileLocation {
                    site: SiteId(2),
                    node: 19,
                },
            ]
            .into_iter()
            .collect(),
            producer: Some("mProject-42".into()),
            created_at: 123_456_789,
        }
    }

    #[test]
    fn roundtrip_full_entry() {
        let e = sample();
        let b = e.to_bytes();
        assert_eq!(b.len(), e.encoded_len());
        let back = RegistryEntry::from_bytes(b).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn roundtrip_minimal_entry() {
        let e = RegistryEntry::new(
            "f",
            0,
            FileLocation {
                site: SiteId(3),
                node: 0,
            },
            0,
        );
        let back = RegistryEntry::from_bytes(e.to_bytes()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.producer, None);
    }

    #[test]
    fn roundtrip_empty_locations() {
        let mut e = sample();
        e.locations.clear();
        let back = RegistryEntry::from_bytes(e.to_bytes()).unwrap();
        assert!(back.locations.is_empty());
    }

    #[test]
    fn decode_is_zero_copy_for_strings() {
        let wire = sample().to_bytes();
        let decoded = RegistryEntry::from_bytes(wire.clone()).unwrap();
        // The name view points inside the wire buffer itself.
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        let name_ptr = decoded.name.as_str().as_ptr() as usize;
        assert!(
            wire_range.contains(&name_ptr),
            "decoded name was copied out of the wire buffer"
        );
        let producer_ptr = decoded.producer.as_ref().unwrap().as_str().as_ptr() as usize;
        assert!(wire_range.contains(&producer_ptr));
    }

    #[test]
    fn locations_stay_inline_up_to_four() {
        let mut locs = Locations::one(FileLocation {
            site: SiteId(0),
            node: 0,
        });
        for i in 1..4u32 {
            locs.push(FileLocation {
                site: SiteId(i as u16),
                node: i,
            });
            assert!(matches!(locs, Locations::Inline { .. }));
        }
        locs.push(FileLocation {
            site: SiteId(9),
            node: 9,
        });
        assert!(matches!(locs, Locations::Heap(_)));
        assert_eq!(locs.len(), 5);
        assert_eq!(locs[4].node, 9);
        // Slice behaviour survives the spill.
        locs.sort();
        assert!(locs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn meta_str_compares_like_str() {
        let m = MetaStr::from("abc");
        assert_eq!(m, "abc");
        assert_eq!("abc", m);
        assert_eq!(m, "abc".to_string());
        let (a, b) = (MetaStr::from("a"), MetaStr::from("b"));
        assert!(a < b);
        assert_eq!(format!("{m}"), "abc");
        assert_eq!(format!("{m:?}"), "\"abc\"");
        assert!(MetaStr::from_utf8(Bytes::from(vec![0xFF, 0xFE])).is_err());
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        let full = sample().to_bytes();
        for cut in 0..full.len() {
            let sliced = full.slice(0..cut);
            let res = RegistryEntry::from_bytes(sliced);
            assert!(res.is_err(), "truncation at {cut} should fail");
        }
    }

    #[test]
    fn garbage_payload_errors() {
        let garbage = Bytes::from(vec![0xFFu8; 64]);
        assert!(RegistryEntry::from_bytes(garbage).is_err());
    }

    #[test]
    fn add_location_dedups() {
        let mut e = sample();
        let loc = FileLocation {
            site: SiteId(0),
            node: 7,
        };
        assert!(
            !e.add_location(loc),
            "existing location should not duplicate"
        );
        assert_eq!(e.locations.len(), 2);
        assert!(e.add_location(FileLocation {
            site: SiteId(1),
            node: 1
        }));
        assert_eq!(e.locations.len(), 3);
    }

    #[test]
    fn availability_by_site() {
        let e = sample();
        assert!(e.available_at(SiteId(0)));
        assert!(e.available_at(SiteId(2)));
        assert!(!e.available_at(SiteId(1)));
    }

    #[test]
    fn cache_key_matches_name() {
        let e = sample();
        let k = e.cache_key();
        assert_eq!(k.as_str(), e.name.as_str());
        assert_eq!(k.hash64(), geometa_cache::fx_hash_str(&e.name));
    }

    #[test]
    fn encoded_len_is_exact_for_many_shapes() {
        for n_locs in [0usize, 1, 5, 50] {
            for producer in [None, Some("task")] {
                let e = RegistryEntry {
                    name: "x".repeat(n_locs + 1).into(),
                    size: 42,
                    locations: (0..n_locs)
                        .map(|i| FileLocation {
                            site: SiteId(i as u16),
                            node: i as u32,
                        })
                        .collect(),
                    producer: producer.map(MetaStr::from),
                    created_at: 7,
                };
                assert_eq!(e.to_bytes().len(), e.encoded_len());
            }
        }
    }

    #[test]
    fn entries_are_small_like_the_paper_says() {
        // Metadata must stay tiny relative to even "small" files.
        let e = sample();
        assert!(
            e.encoded_len() < 128,
            "entry unexpectedly large: {}",
            e.encoded_len()
        );
    }
}
