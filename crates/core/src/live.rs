//! A real multi-threaded deployment of the metadata middleware.
//!
//! Where `geometa-experiments` *simulates* the paper's testbed in virtual
//! time, this module actually runs it: one service thread per site's
//! registry instance, clients on arbitrary threads, WAN latency injected by
//! sleeping (scaled down so tests finish quickly), asynchronous propagation
//! through a delay line, and — for the replicated strategy — a background
//! synchronization agent thread.
//!
//! A downstream user replaces the channel transport with real sockets and
//! the latency scale with 1.0; nothing else changes.
//!
//! ```
//! use geometa_core::live::{LiveCluster, LiveConfig};
//! use geometa_core::strategy::StrategyKind;
//! use geometa_sim::topology::{SiteId, Topology};
//!
//! let cluster = LiveCluster::start(LiveConfig {
//!     topology: Topology::azure_4dc(),
//!     kind: StrategyKind::DhtLocalReplica,
//!     latency_scale: 0.001, // 1000x compressed WAN latencies
//!     ..LiveConfig::default()
//! });
//! let client = cluster.client(SiteId(0), 0);
//! client.publish("quick.dat", 4096).unwrap();
//! let entry = client.resolve("quick.dat").unwrap();
//! assert_eq!(entry.size, 4096);
//! cluster.shutdown();
//! ```

use crate::client::{ClientConfig, StrategyClient};
use crate::controller::ArchitectureController;
use crate::protocol::{RegistryRequest, RegistryResponse};
use crate::registry::RegistryInstance;
use crate::strategy::StrategyKind;
use crate::sync_agent::SyncAgentState;
use crate::transport::{InProcessTransport, RegistryTransport};
use crate::MetaError;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use geometa_sim::topology::{SiteId, Topology};
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a live cluster.
#[derive(Clone)]
pub struct LiveConfig {
    /// Site layout and latency matrix.
    pub topology: Topology,
    /// Which of the four strategies to run.
    pub kind: StrategyKind,
    /// Multiplier applied to topology latencies before sleeping. 1.0 =
    /// realistic; tests use small values to compress time.
    pub latency_scale: f64,
    /// Shards per registry cache.
    pub shards: usize,
    /// Real-time interval between sync-agent cycles (replicated strategy).
    pub sync_interval: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            topology: Topology::azure_4dc(),
            kind: StrategyKind::DhtLocalReplica,
            latency_scale: 0.001,
            shards: 16,
            sync_interval: Duration::from_millis(5),
        }
    }
}

enum ServiceMsg {
    Request {
        req: RegistryRequest,
        reply: Sender<RegistryResponse>,
    },
    Cast {
        req: RegistryRequest,
    },
    Shutdown,
}

/// A deferred job executed by the delay line.
struct DelayedJob {
    due: Instant,
    seq: u64,
    job: Box<dyn FnOnce() + Send>,
}

impl PartialEq for DelayedJob {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedJob {}
impl PartialOrd for DelayedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (due, seq).
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Executes closures at deadlines; the asynchronous-propagation spine.
pub struct DelayLine {
    heap: Mutex<BinaryHeap<DelayedJob>>,
    cond: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
}

impl DelayLine {
    fn new() -> Arc<DelayLine> {
        Arc::new(DelayLine {
            heap: Mutex::new(BinaryHeap::new()),
            cond: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Schedule `job` to run after `delay`.
    pub fn schedule(&self, delay: Duration, job: Box<dyn FnOnce() + Send>) {
        let due = Instant::now() + delay;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().push(DelayedJob { due, seq, job });
        self.cond.notify_one();
    }

    fn run_worker(self: &Arc<Self>) {
        loop {
            let job = {
                let mut heap = self.heap.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    match heap.peek() {
                        None => {
                            self.cond.wait(&mut heap);
                        }
                        Some(top) => {
                            let now = Instant::now();
                            if top.due <= now {
                                break heap.pop().expect("peeked job exists");
                            }
                            let due = top.due;
                            self.cond.wait_until(&mut heap, due);
                        }
                    }
                }
            };
            (job.job)();
        }
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cond.notify_all();
    }
}

/// Per-client transport: channels + injected latency.
pub struct LiveTransport {
    site: SiteId,
    senders: HashMap<SiteId, Sender<ServiceMsg>>,
    topology: Arc<Topology>,
    scale: f64,
    delay: Arc<DelayLine>,
    epoch: Instant,
}

impl LiveTransport {
    fn one_way(&self, to: SiteId) -> Duration {
        let micros = self.topology.one_way_latency(self.site, to).as_micros();
        Duration::from_nanos((micros as f64 * 1_000.0 * self.scale) as u64)
    }
}

impl RegistryTransport for LiveTransport {
    fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
        let Some(sender) = self.senders.get(&target) else {
            return RegistryResponse::Error {
                error: MetaError::Unavailable,
            };
        };
        let lat = self.one_way(target);
        std::thread::sleep(lat); // request flight
        let (reply_tx, reply_rx) = bounded(1);
        if sender
            .send(ServiceMsg::Request {
                req,
                reply: reply_tx,
            })
            .is_err()
        {
            return RegistryResponse::Error {
                error: MetaError::Unavailable,
            };
        }
        let resp = match reply_rx.recv() {
            Ok(r) => r,
            Err(_) => {
                return RegistryResponse::Error {
                    error: MetaError::Unavailable,
                }
            }
        };
        std::thread::sleep(lat); // response flight
        resp
    }

    fn cast(&self, target: SiteId, req: RegistryRequest) {
        let Some(sender) = self.senders.get(&target) else {
            return;
        };
        let sender = sender.clone();
        let lat = self.one_way(target);
        self.delay.schedule(
            lat,
            Box::new(move || {
                let _ = sender.send(ServiceMsg::Cast { req });
            }),
        );
    }

    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn sites(&self) -> Vec<SiteId> {
        let mut s: Vec<SiteId> = self.senders.keys().copied().collect();
        s.sort();
        s
    }
}

/// A running live deployment: registry service threads, delay line, and
/// (for the replicated strategy) a sync-agent thread.
pub struct LiveCluster {
    config: LiveConfig,
    topology: Arc<Topology>,
    registries: HashMap<SiteId, Arc<RegistryInstance>>,
    senders: HashMap<SiteId, Sender<ServiceMsg>>,
    controller: Arc<ArchitectureController>,
    delay: Arc<DelayLine>,
    threads: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    epoch: Instant,
}

impl LiveCluster {
    /// Start service threads for every site and, if needed, the sync agent.
    pub fn start(config: LiveConfig) -> LiveCluster {
        let topology = Arc::new(config.topology.clone());
        let sites: Vec<SiteId> = topology.site_ids().collect();
        let controller = Arc::new(ArchitectureController::with_kind(
            config.kind,
            sites.clone(),
        ));
        let epoch = Instant::now();
        let delay = DelayLine::new();
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut registries = HashMap::new();
        let mut senders = HashMap::new();
        let mut threads = Vec::new();

        for &site in &sites {
            let registry = Arc::new(RegistryInstance::new(site, config.shards));
            let (tx, rx): (Sender<ServiceMsg>, Receiver<ServiceMsg>) = unbounded();
            registries.insert(site, Arc::clone(&registry));
            senders.insert(site, tx);
            let epoch_c = epoch;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("registry-{site}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                ServiceMsg::Request { req, reply } => {
                                    let now = epoch_c.elapsed().as_micros() as u64;
                                    let resp = InProcessTransport::serve(&registry, req, now);
                                    let _ = reply.send(resp);
                                }
                                ServiceMsg::Cast { req } => {
                                    let now = epoch_c.elapsed().as_micros() as u64;
                                    let _ = InProcessTransport::serve(&registry, req, now);
                                }
                                ServiceMsg::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawn registry thread"),
            );
        }

        // Delay-line worker.
        {
            let delay = Arc::clone(&delay);
            threads.push(
                std::thread::Builder::new()
                    .name("delay-line".into())
                    .spawn(move || delay.run_worker())
                    .expect("spawn delay line"),
            );
        }

        let mut cluster = LiveCluster {
            config,
            topology,
            registries,
            senders,
            controller,
            delay,
            threads,
            shutdown,
            epoch,
        };
        if cluster.config.kind == StrategyKind::Replicated {
            cluster.spawn_sync_agent();
        }
        cluster
    }

    fn spawn_sync_agent(&mut self) {
        let sites: Vec<SiteId> = self.topology.site_ids().collect();
        let agent_site = sites[0];
        let senders = self.senders.clone();
        let topology = Arc::clone(&self.topology);
        let scale = self.config.latency_scale;
        let interval = self.config.sync_interval;
        let shutdown = Arc::clone(&self.shutdown);
        let epoch = self.epoch;
        self.threads.push(
            std::thread::Builder::new()
                .name("sync-agent".into())
                .spawn(move || {
                    let mut state = SyncAgentState::new(sites.clone());
                    let one_way = |to: SiteId| {
                        let us = topology.one_way_latency(agent_site, to).as_micros();
                        Duration::from_nanos((us as f64 * 1_000.0 * scale) as u64)
                    };
                    while !shutdown.load(Ordering::Acquire) {
                        for &site in &sites.clone() {
                            if shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            let Some(tx) = senders.get(&site) else {
                                continue;
                            };
                            let lat = one_way(site);
                            std::thread::sleep(lat);
                            let pull_time = epoch.elapsed().as_micros() as u64;
                            let (reply_tx, reply_rx) = bounded(1);
                            if tx
                                .send(ServiceMsg::Request {
                                    req: RegistryRequest::DeltaPull {
                                        since: state.watermark(site),
                                    },
                                    reply: reply_tx,
                                })
                                .is_err()
                            {
                                return;
                            }
                            let Ok(resp) = reply_rx.recv() else { return };
                            std::thread::sleep(lat);
                            let delta = match resp {
                                RegistryResponse::Delta { entries } => entries,
                                _ => Vec::new(),
                            };
                            // Back the watermark off by 1us so same-tick
                            // writes are re-pulled (absorb is idempotent).
                            let pushes = state.integrate(site, delta, pull_time.saturating_sub(1));
                            for push in pushes {
                                if let Some(dst) = senders.get(&push.target) {
                                    std::thread::sleep(one_way(push.target));
                                    let _ = dst.send(ServiceMsg::Cast {
                                        req: RegistryRequest::Absorb {
                                            entries: push.entries,
                                        },
                                    });
                                }
                            }
                        }
                        state.cycle_done();
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn sync agent"),
        );
    }

    /// Create a client for a node at `site`.
    pub fn client(&self, site: SiteId, node: u32) -> StrategyClient<LiveTransport> {
        let transport = LiveTransport {
            site,
            senders: self.senders.clone(),
            topology: Arc::clone(&self.topology),
            scale: self.config.latency_scale,
            delay: Arc::clone(&self.delay),
            epoch: self.epoch,
        };
        StrategyClient::new(
            Arc::new(transport),
            Arc::clone(&self.controller),
            ClientConfig { site, node },
        )
    }

    /// The strategy controller (for runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        &self.controller
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.registries.get(&site)
    }

    /// Fault injection: kill `site`'s primary cache mid-traffic (the live
    /// analog of the simulator's site-crash fault). The service thread
    /// keeps running; the next operation against the instance drives the
    /// HaCache primary→replica promotion, exactly as in the DES chaos
    /// scenarios. Returns whether the site hosts a registry.
    pub fn inject_registry_failure(&self, site: SiteId) -> bool {
        match self.registries.get(&site) {
            Some(r) => {
                r.fail_primary();
                true
            }
            None => false,
        }
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Stop all threads and drain. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.delay.stop();
        for tx in self.senders.values() {
            let _ = tx.send(ServiceMsg::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for LiveCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(kind: StrategyKind) -> LiveConfig {
        LiveConfig {
            topology: Topology::azure_4dc(),
            kind,
            latency_scale: 0.0005, // 2000x compression: 100 ms RTT -> 50 us
            shards: 8,
            sync_interval: Duration::from_millis(2),
        }
    }

    #[test]
    fn centralized_end_to_end() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::Centralized));
        let w = cluster.client(SiteId(1), 0);
        let r = cluster.client(SiteId(3), 0);
        for i in 0..50 {
            w.publish(&format!("f{i}"), 10).unwrap();
        }
        for i in 0..50 {
            assert!(r.resolve(&format!("f{i}")).is_ok());
        }
        cluster.shutdown();
    }

    #[test]
    fn dht_local_replica_end_to_end_with_lazy_propagation() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::DhtLocalReplica));
        let w = cluster.client(SiteId(0), 0);
        for i in 0..50 {
            w.publish(&format!("g{i}"), 10).unwrap();
        }
        // Local replica is immediately visible.
        let local = cluster.client(SiteId(0), 1);
        for i in 0..50 {
            assert!(local.resolve(&format!("g{i}")).is_ok());
        }
        // Remote readers may need the lazy push to land.
        let remote = cluster.client(SiteId(2), 0);
        for i in 0..50 {
            let res = remote.resolve_with_retry(&format!("g{i}"), 50, |_| {
                std::thread::sleep(Duration::from_millis(1))
            });
            assert!(res.is_ok(), "g{i} never became visible remotely");
        }
        cluster.shutdown();
    }

    #[test]
    fn replicated_sync_agent_propagates() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::Replicated));
        let w = cluster.client(SiteId(1), 0);
        for i in 0..20 {
            w.publish(&format!("r{i}"), 10).unwrap();
        }
        let r = cluster.client(SiteId(3), 0);
        for i in 0..20 {
            let res = r.resolve_with_retry(&format!("r{i}"), 200, |_| {
                std::thread::sleep(Duration::from_millis(2))
            });
            assert!(res.is_ok(), "r{i} never synced");
        }
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clients_many_sites() {
        let cluster = Arc::new(LiveCluster::start(fast_config(
            StrategyKind::DhtNonReplicated,
        )));
        let mut handles = Vec::new();
        for site in 0..4u16 {
            let cluster = Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                let c = cluster.client(SiteId(site), 0);
                for i in 0..25 {
                    c.publish(&format!("s{site}-f{i}"), 1).unwrap();
                }
                for i in 0..25 {
                    c.resolve(&format!("s{site}-f{i}")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = (0..4)
            .map(|s| cluster.registry(SiteId(s)).unwrap().len())
            .sum();
        assert_eq!(total, 100, "DHT partitioning stores each entry once");
        Arc::try_unwrap(cluster).ok().unwrap().shutdown();
    }

    #[test]
    fn injected_registry_failure_promotes_without_losing_acked_writes() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::DhtNonReplicated));
        let w = cluster.client(SiteId(0), 0);
        for i in 0..40 {
            w.publish(&format!("pre{i}"), 1).unwrap();
        }
        // Kill every registry's primary mid-run (worst case).
        for s in 0..4u16 {
            assert!(cluster.inject_registry_failure(SiteId(s)));
        }
        assert!(!cluster.inject_registry_failure(SiteId(9)), "unknown site");
        // Every acked write still resolves (promotion served it), and new
        // writes keep flowing through the promoted stores.
        for i in 0..40 {
            assert!(
                w.resolve(&format!("pre{i}")).is_ok(),
                "pre{i} lost to the injected failure"
            );
        }
        for i in 0..40 {
            w.publish(&format!("post{i}"), 1).unwrap();
            assert!(w.resolve(&format!("post{i}")).is_ok());
        }
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_clean_and_idempotent_via_drop() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::Replicated));
        let c = cluster.client(SiteId(0), 0);
        c.publish("x", 1).unwrap();
        drop(cluster); // Drop path must join all threads without hanging.
    }

    #[test]
    fn delay_line_executes_in_deadline_order() {
        let delay = DelayLine::new();
        let d2 = Arc::clone(&delay);
        let worker = std::thread::spawn(move || d2.run_worker());
        let (tx, rx) = unbounded();
        let t1 = tx.clone();
        let t2 = tx.clone();
        delay.schedule(
            Duration::from_millis(20),
            Box::new(move || {
                let _ = t1.send(2u32);
            }),
        );
        delay.schedule(
            Duration::from_millis(5),
            Box::new(move || {
                let _ = t2.send(1u32);
            }),
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        delay.stop();
        worker.join().unwrap();
    }
}
