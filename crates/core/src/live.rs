//! A real multi-threaded deployment of the metadata middleware.
//!
//! Where `geometa-experiments` *simulates* the paper's testbed in virtual
//! time, this module actually runs it: one service thread per site's
//! registry instance, clients on arbitrary threads, WAN latency injected by
//! sleeping (scaled down so tests finish quickly), asynchronous propagation
//! through a delay line, and — for the replicated strategy — a background
//! synchronization agent thread.
//!
//! All of the generic machinery (registry ownership, dispatch, thread
//! tracking, sync-agent driving, failure injection, graceful shutdown)
//! lives in [`crate::runtime::ServiceRuntime`]; this module only supplies
//! the *connection layer* — in-process channels plus a latency sleep. The
//! framed-TCP deployment (`geometa-net`) plugs a socket layer into the
//! same runtime; nothing else changes.
//!
//! ```
//! use geometa_core::live::{LiveCluster, LiveConfig};
//! use geometa_core::strategy::StrategyKind;
//! use geometa_sim::topology::{SiteId, Topology};
//!
//! let cluster = LiveCluster::start(LiveConfig {
//!     topology: Topology::azure_4dc(),
//!     kind: StrategyKind::DhtLocalReplica,
//!     latency_scale: 0.001, // 1000x compressed WAN latencies
//!     ..LiveConfig::default()
//! });
//! let client = cluster.client(SiteId(0), 0);
//! client.publish("quick.dat", 4096).unwrap();
//! let entry = client.resolve("quick.dat").unwrap();
//! assert_eq!(entry.size, 4096);
//! cluster.shutdown();
//! ```

use crate::client::StrategyClient;
use crate::controller::ArchitectureController;
use crate::protocol::{RegistryRequest, RegistryResponse};
use crate::registry::RegistryInstance;
use crate::runtime::{ConnectionLayer, RuntimeConfig, ServiceCore, ServiceRuntime, Spawner};
use crate::strategy::StrategyKind;
use crate::transport::RegistryTransport;
use crate::MetaError;
use crossbeam::channel::{bounded, unbounded, Sender};
use geometa_sim::topology::{SiteId, Topology};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

pub use crate::runtime::DelayLine;

/// Configuration of a live cluster.
#[derive(Clone)]
pub struct LiveConfig {
    /// Site layout and latency matrix.
    pub topology: Topology,
    /// Which of the four strategies to run.
    pub kind: StrategyKind,
    /// Multiplier applied to topology latencies before sleeping. 1.0 =
    /// realistic; tests use small values to compress time.
    pub latency_scale: f64,
    /// Shards per registry cache.
    pub shards: usize,
    /// Real-time interval between sync-agent cycles (replicated strategy).
    pub sync_interval: Duration,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            topology: Topology::azure_4dc(),
            kind: StrategyKind::DhtLocalReplica,
            latency_scale: 0.001,
            shards: 16,
            sync_interval: Duration::from_millis(5),
        }
    }
}

enum ServiceMsg {
    Request {
        req: RegistryRequest,
        reply: Sender<RegistryResponse>,
    },
    Cast {
        req: RegistryRequest,
    },
    Shutdown,
}

/// The channel connection layer: one service thread per site draining a
/// channel, clients sleeping the (scaled) WAN latency around each send.
pub struct ChannelLayer {
    scale: f64,
    senders: HashMap<SiteId, Sender<ServiceMsg>>,
}

impl ChannelLayer {
    /// A channel layer sleeping `topology latency × scale` per flight.
    pub fn new(scale: f64) -> ChannelLayer {
        ChannelLayer {
            scale,
            senders: HashMap::new(),
        }
    }
}

impl ConnectionLayer for ChannelLayer {
    type Transport = LiveTransport;

    fn start(&mut self, core: &Arc<ServiceCore>, spawner: &mut Spawner) {
        for site in core.topology().site_ids() {
            let (tx, rx) = unbounded();
            self.senders.insert(site, tx);
            let core = Arc::clone(core);
            spawner.spawn(format!("registry-{site}"), move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ServiceMsg::Request { req, reply } => {
                            let _ = reply.send(core.serve(site, req));
                        }
                        ServiceMsg::Cast { req } => {
                            let _ = core.serve(site, req);
                        }
                        ServiceMsg::Shutdown => break,
                    }
                }
            });
        }
    }

    fn transport(&self, core: &Arc<ServiceCore>, site: SiteId) -> Arc<LiveTransport> {
        Arc::new(LiveTransport {
            site,
            senders: self.senders.clone(),
            core: Arc::clone(core),
            scale: self.scale,
        })
    }

    fn unblock(&self) {
        // geometa-lint: allow(unordered-iter) shutdown broadcast: every sender gets the message, delivery order is irrelevant
        for tx in self.senders.values() {
            let _ = tx.send(ServiceMsg::Shutdown);
        }
    }
}

/// Per-client transport: channels + injected latency.
pub struct LiveTransport {
    site: SiteId,
    senders: HashMap<SiteId, Sender<ServiceMsg>>,
    core: Arc<ServiceCore>,
    scale: f64,
}

impl LiveTransport {
    fn one_way(&self, to: SiteId) -> Duration {
        let micros = self
            .core
            .topology()
            .one_way_latency(self.site, to)
            .as_micros();
        Duration::from_nanos((micros as f64 * 1_000.0 * self.scale) as u64)
    }
}

impl RegistryTransport for LiveTransport {
    fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
        let Some(sender) = self.senders.get(&target) else {
            return RegistryResponse::Error {
                error: MetaError::Unavailable,
            };
        };
        let lat = self.one_way(target);
        std::thread::sleep(lat); // request flight
        let (reply_tx, reply_rx) = bounded(1);
        if sender
            .send(ServiceMsg::Request {
                req,
                reply: reply_tx,
            })
            .is_err()
        {
            return RegistryResponse::Error {
                error: MetaError::Unavailable,
            };
        }
        let resp = match reply_rx.recv() {
            Ok(r) => r,
            Err(_) => {
                return RegistryResponse::Error {
                    error: MetaError::Unavailable,
                }
            }
        };
        std::thread::sleep(lat); // response flight
        resp
    }

    /// Fire-and-forget: the send is deferred onto the delay line for the
    /// flight latency, so the caller never blocks on the target.
    fn cast(&self, target: SiteId, req: RegistryRequest) {
        let Some(sender) = self.senders.get(&target) else {
            return;
        };
        let sender = sender.clone();
        let lat = self.one_way(target);
        self.core.delay_line().schedule(
            lat,
            Box::new(move || {
                let _ = sender.send(ServiceMsg::Cast { req });
            }),
        );
    }

    fn now_micros(&self) -> u64 {
        self.core.now_micros()
    }

    fn sites(&self) -> Vec<SiteId> {
        let mut s: Vec<SiteId> = self.senders.keys().copied().collect();
        s.sort();
        s
    }
}

/// A running live deployment: the service runtime behind a channel layer.
pub struct LiveCluster {
    runtime: ServiceRuntime<ChannelLayer>,
}

impl LiveCluster {
    /// Start service threads for every site and, if needed, the sync agent.
    pub fn start(config: LiveConfig) -> LiveCluster {
        LiveCluster {
            runtime: ServiceRuntime::start(
                RuntimeConfig {
                    topology: config.topology,
                    kind: config.kind,
                    shards: config.shards,
                    sync_interval: config.sync_interval,
                    // Channel deployments stay deterministic: an
                    // in-memory WAL with identical append semantics.
                    ..RuntimeConfig::default()
                },
                ChannelLayer::new(config.latency_scale),
            ),
        }
    }

    /// Create a client for a node at `site`.
    pub fn client(&self, site: SiteId, node: u32) -> StrategyClient<LiveTransport> {
        self.runtime.client(site, node)
    }

    /// The strategy controller (for runtime switching).
    pub fn controller(&self) -> &Arc<ArchitectureController> {
        self.runtime.controller()
    }

    /// Direct handle to a site's registry (diagnostics/tests).
    pub fn registry(&self, site: SiteId) -> Option<&Arc<RegistryInstance>> {
        self.runtime.registry(site)
    }

    /// Fault injection: kill `site`'s primary cache mid-traffic (the live
    /// analog of the simulator's site-crash fault). The service thread
    /// keeps running; the next operation against the instance drives the
    /// HaCache primary→replica promotion, exactly as in the DES chaos
    /// scenarios. Returns whether the site hosts a registry.
    pub fn inject_registry_failure(&self, site: SiteId) -> bool {
        self.runtime.inject_registry_failure(site)
    }

    /// The deployment's topology.
    pub fn topology(&self) -> &Topology {
        self.runtime.topology()
    }

    /// Stop all threads and drain. Idempotent (also runs on drop).
    pub fn shutdown(self) {
        self.runtime.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config(kind: StrategyKind) -> LiveConfig {
        LiveConfig {
            topology: Topology::azure_4dc(),
            kind,
            latency_scale: 0.0005, // 2000x compression: 100 ms RTT -> 50 us
            shards: 8,
            sync_interval: Duration::from_millis(2),
        }
    }

    #[test]
    fn centralized_end_to_end() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::Centralized));
        let w = cluster.client(SiteId(1), 0);
        let r = cluster.client(SiteId(3), 0);
        for i in 0..50 {
            w.publish(&format!("f{i}"), 10).unwrap();
        }
        for i in 0..50 {
            assert!(r.resolve(&format!("f{i}")).is_ok());
        }
        cluster.shutdown();
    }

    #[test]
    fn dht_local_replica_end_to_end_with_lazy_propagation() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::DhtLocalReplica));
        let w = cluster.client(SiteId(0), 0);
        for i in 0..50 {
            w.publish(&format!("g{i}"), 10).unwrap();
        }
        // Local replica is immediately visible.
        let local = cluster.client(SiteId(0), 1);
        for i in 0..50 {
            assert!(local.resolve(&format!("g{i}")).is_ok());
        }
        // Remote readers may need the lazy push to land.
        let remote = cluster.client(SiteId(2), 0);
        for i in 0..50 {
            let res = remote.resolve_with_retry(&format!("g{i}"), 50, |_| {
                std::thread::sleep(Duration::from_millis(1))
            });
            assert!(res.is_ok(), "g{i} never became visible remotely");
        }
        cluster.shutdown();
    }

    #[test]
    fn replicated_sync_agent_propagates() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::Replicated));
        let w = cluster.client(SiteId(1), 0);
        for i in 0..20 {
            w.publish(&format!("r{i}"), 10).unwrap();
        }
        let r = cluster.client(SiteId(3), 0);
        for i in 0..20 {
            let res = r.resolve_with_retry(&format!("r{i}"), 200, |_| {
                std::thread::sleep(Duration::from_millis(2))
            });
            assert!(res.is_ok(), "r{i} never synced");
        }
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clients_many_sites() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::DhtNonReplicated));
        std::thread::scope(|s| {
            for site in 0..4u16 {
                let cluster = &cluster;
                s.spawn(move || {
                    let c = cluster.client(SiteId(site), 0);
                    for i in 0..25 {
                        c.publish(&format!("s{site}-f{i}"), 1).unwrap();
                    }
                    for i in 0..25 {
                        c.resolve(&format!("s{site}-f{i}")).unwrap();
                    }
                });
            }
        });
        let total: usize = (0..4)
            .map(|s| cluster.registry(SiteId(s)).unwrap().len())
            .sum();
        assert_eq!(total, 100, "DHT partitioning stores each entry once");
        cluster.shutdown();
    }

    #[test]
    fn injected_registry_failure_promotes_without_losing_acked_writes() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::DhtNonReplicated));
        let w = cluster.client(SiteId(0), 0);
        for i in 0..40 {
            w.publish(&format!("pre{i}"), 1).unwrap();
        }
        // Kill every registry's primary mid-run (worst case).
        for s in 0..4u16 {
            assert!(cluster.inject_registry_failure(SiteId(s)));
        }
        assert!(!cluster.inject_registry_failure(SiteId(9)), "unknown site");
        // Every acked write still resolves (promotion served it), and new
        // writes keep flowing through the promoted stores.
        for i in 0..40 {
            assert!(
                w.resolve(&format!("pre{i}")).is_ok(),
                "pre{i} lost to the injected failure"
            );
        }
        for i in 0..40 {
            w.publish(&format!("post{i}"), 1).unwrap();
            assert!(w.resolve(&format!("post{i}")).is_ok());
        }
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_clean_and_idempotent_via_drop() {
        let cluster = LiveCluster::start(fast_config(StrategyKind::Replicated));
        let c = cluster.client(SiteId(0), 0);
        c.publish("x", 1).unwrap();
        drop(cluster); // Drop path must join all threads without hanging.
    }
}
