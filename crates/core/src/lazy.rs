//! Lazy update batching: asynchronous, batched metadata propagation.
//!
//! "Rather than using file-level eager metadata updates across datacenters,
//! we favor the creation of batches of updates for multiple files. We
//! denote this approach *lazy metadata updates*" (paper §III-D). A
//! [`LazyBatcher`] accumulates per-destination queues of entries and
//! releases a batch when it reaches `max_batch` entries or its oldest entry
//! exceeds `max_age`.

use crate::entry::RegistryEntry;
use geometa_sim::time::{SimDuration, SimTime};
use geometa_sim::topology::SiteId;
use std::collections::HashMap;

/// A batch ready to be shipped to a destination registry instance.
#[derive(Clone, Debug)]
pub struct ReadyBatch {
    /// Destination registry site.
    pub target: SiteId,
    /// Entries to absorb there.
    pub entries: Vec<RegistryEntry>,
}

/// Conservation accounting of a batcher: every entry ever enqueued is
/// either still pending or was handed out in a flushed batch. The chaos
/// oracle asserts this end to end — batched-but-unflushed publishes must
/// be retried or reported, never silently dropped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Entries ever enqueued.
    pub enqueued: u64,
    /// Batches handed out (size-, age- and drain-triggered).
    pub flushed_batches: u64,
    /// Entries handed out inside those batches.
    pub flushed_entries: u64,
    /// Entries currently waiting in destination queues.
    pub pending: u64,
}

impl BatcherStats {
    /// The conservation invariant: nothing enqueued ever disappears.
    pub fn conserved(&self) -> bool {
        self.enqueued == self.flushed_entries + self.pending
    }
}

/// Accumulates lazy updates per destination and decides when to flush.
#[derive(Debug)]
pub struct LazyBatcher {
    max_batch: usize,
    max_age: SimDuration,
    queues: HashMap<SiteId, (SimTime, Vec<RegistryEntry>)>,
    enqueued: u64,
    flushed_batches: u64,
    flushed_entries: u64,
}

impl LazyBatcher {
    /// Flush when a destination queue reaches `max_batch` entries or its
    /// oldest entry is older than `max_age`.
    pub fn new(max_batch: usize, max_age: SimDuration) -> LazyBatcher {
        assert!(max_batch > 0, "batch size must be positive");
        LazyBatcher {
            max_batch,
            max_age,
            queues: HashMap::new(),
            enqueued: 0,
            flushed_batches: 0,
            flushed_entries: 0,
        }
    }

    /// An eager batcher: every enqueue immediately yields a single-entry
    /// batch. Baseline for the `ablation_lazy` bench.
    pub fn eager() -> LazyBatcher {
        LazyBatcher::new(1, SimDuration::ZERO)
    }

    /// Queue capacity to pre-allocate per destination: the full batch size
    /// for ordinary configurations, capped so a huge `max_batch` doesn't
    /// reserve memory it may never use.
    fn queue_capacity(&self) -> usize {
        self.max_batch.min(256)
    }

    /// Queue `entry` for `target`. Returns a batch if the size threshold
    /// tripped.
    ///
    /// Destination queues are pre-sized to the batch threshold, so steady
    /// state enqueueing never reallocates: a queue is allocated once per
    /// destination and each flush hands the full buffer off, replacing it
    /// with a fresh pre-sized one.
    pub fn enqueue(
        &mut self,
        target: SiteId,
        entry: RegistryEntry,
        now: SimTime,
    ) -> Option<ReadyBatch> {
        self.enqueued += 1;
        let cap = self.queue_capacity();
        let (first_at, queue) = self
            .queues
            .entry(target)
            .or_insert_with(|| (now, Vec::with_capacity(cap)));
        if queue.is_empty() {
            *first_at = now;
        }
        queue.push(entry);
        if queue.len() >= self.max_batch {
            let entries = std::mem::replace(queue, Vec::with_capacity(cap));
            self.flushed_batches += 1;
            self.flushed_entries += entries.len() as u64;
            Some(ReadyBatch { target, entries })
        } else {
            None
        }
    }

    /// Collect batches whose oldest entry exceeded `max_age` at `now`.
    /// Call periodically (timer-driven).
    pub fn poll_expired(&mut self, now: SimTime) -> Vec<ReadyBatch> {
        let mut out = Vec::new();
        // geometa-lint: allow(unordered-iter) the sort_by_key below re-orders the batches before they leave this function
        for (&target, (first_at, queue)) in self.queues.iter_mut() {
            if !queue.is_empty() && now.since(*first_at) >= self.max_age {
                let entries = std::mem::take(queue);
                self.flushed_batches += 1;
                self.flushed_entries += entries.len() as u64;
                out.push(ReadyBatch { target, entries });
            }
        }
        // Deterministic order regardless of HashMap iteration.
        out.sort_by_key(|b| b.target);
        out
    }

    /// Flush everything unconditionally (shutdown / drain).
    pub fn flush_all(&mut self) -> Vec<ReadyBatch> {
        let mut out = Vec::new();
        for (&target, (_, queue)) in self.queues.iter_mut() {
            if !queue.is_empty() {
                let entries = std::mem::take(queue);
                self.flushed_batches += 1;
                self.flushed_entries += entries.len() as u64;
                out.push(ReadyBatch { target, entries });
            }
        }
        out.sort_by_key(|b| b.target);
        out
    }

    /// Entries currently waiting.
    pub fn pending(&self) -> usize {
        self.queues.values().map(|(_, q)| q.len()).sum()
    }

    /// When the earliest pending entry was enqueued (None if empty). Used
    /// to schedule the next age-based flush.
    pub fn oldest_pending(&self) -> Option<SimTime> {
        self.queues
            .values()
            .filter(|(_, q)| !q.is_empty())
            .map(|(t, _)| *t)
            .min()
    }

    /// (entries enqueued, batches flushed) — the batching ratio is the
    /// message-saving the lazy scheme buys.
    pub fn stats(&self) -> (u64, u64) {
        (self.enqueued, self.flushed_batches)
    }

    /// Full conservation accounting (see [`BatcherStats`]).
    pub fn entry_stats(&self) -> BatcherStats {
        BatcherStats {
            enqueued: self.enqueued,
            flushed_batches: self.flushed_batches,
            flushed_entries: self.flushed_entries,
            pending: self.pending() as u64,
        }
    }

    /// Crash recovery: hand out *everything* still queued so the caller
    /// can retry it. Exactly [`Self::flush_all`], named for intent — a
    /// node that lost its flush timer to a crash must either re-ship
    /// these batches or report them; dropping the queues on the floor is
    /// the bug the chaos oracle's lazy-accounting invariant catches.
    pub fn drain_for_recovery(&mut self) -> Vec<ReadyBatch> {
        self.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;

    fn entry(i: u32) -> RegistryEntry {
        RegistryEntry::new(
            format!("f{i}"),
            1,
            FileLocation {
                site: SiteId(0),
                node: i,
            },
            0,
        )
    }

    #[test]
    fn size_threshold_flushes() {
        let mut b = LazyBatcher::new(3, SimDuration::from_secs(10));
        assert!(b.enqueue(SiteId(1), entry(0), SimTime(0)).is_none());
        assert!(b.enqueue(SiteId(1), entry(1), SimTime(1)).is_none());
        let batch = b.enqueue(SiteId(1), entry(2), SimTime(2)).unwrap();
        assert_eq!(batch.target, SiteId(1));
        assert_eq!(batch.entries.len(), 3);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn destinations_batch_independently() {
        let mut b = LazyBatcher::new(2, SimDuration::from_secs(10));
        assert!(b.enqueue(SiteId(1), entry(0), SimTime(0)).is_none());
        assert!(b.enqueue(SiteId(2), entry(1), SimTime(0)).is_none());
        assert!(b.enqueue(SiteId(1), entry(2), SimTime(0)).is_some());
        assert_eq!(b.pending(), 1, "site 2's entry still queued");
    }

    #[test]
    fn age_threshold_flushes_on_poll() {
        let mut b = LazyBatcher::new(100, SimDuration::from_millis(50));
        b.enqueue(SiteId(1), entry(0), SimTime(0));
        assert!(b.poll_expired(SimTime(40_000)).is_empty(), "not old enough");
        let expired = b.poll_expired(SimTime(60_000));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].entries.len(), 1);
    }

    #[test]
    fn age_clock_resets_after_flush() {
        let mut b = LazyBatcher::new(100, SimDuration::from_millis(50));
        b.enqueue(SiteId(1), entry(0), SimTime(0));
        let _ = b.poll_expired(SimTime(60_000));
        // New entry enqueued at t=60ms must NOT be flushed at t=70ms.
        b.enqueue(SiteId(1), entry(1), SimTime(60_000));
        assert!(b.poll_expired(SimTime(70_000)).is_empty());
        assert_eq!(b.poll_expired(SimTime(120_000)).len(), 1);
    }

    #[test]
    fn eager_batcher_emits_immediately() {
        let mut b = LazyBatcher::eager();
        let batch = b.enqueue(SiteId(3), entry(0), SimTime(0)).unwrap();
        assert_eq!(batch.entries.len(), 1);
    }

    #[test]
    fn flush_all_drains_in_site_order() {
        let mut b = LazyBatcher::new(100, SimDuration::from_secs(10));
        b.enqueue(SiteId(2), entry(0), SimTime(0));
        b.enqueue(SiteId(0), entry(1), SimTime(0));
        b.enqueue(SiteId(1), entry(2), SimTime(0));
        let all = b.flush_all();
        let order: Vec<u16> = all.iter().map(|x| x.target.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn stats_expose_batching_ratio() {
        let mut b = LazyBatcher::new(10, SimDuration::from_secs(10));
        for i in 0..25 {
            b.enqueue(SiteId(1), entry(i), SimTime(i as u64));
        }
        let _ = b.flush_all();
        let (enqueued, batches) = b.stats();
        assert_eq!(enqueued, 25);
        assert_eq!(batches, 3, "2 full batches + 1 flush_all remainder");
    }

    #[test]
    fn oldest_pending_tracks_head_of_line() {
        let mut b = LazyBatcher::new(10, SimDuration::from_secs(1));
        assert_eq!(b.oldest_pending(), None);
        b.enqueue(SiteId(1), entry(0), SimTime(500));
        b.enqueue(SiteId(2), entry(1), SimTime(300));
        assert_eq!(b.oldest_pending(), Some(SimTime(300)));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = LazyBatcher::new(0, SimDuration::ZERO);
    }

    #[test]
    fn conservation_holds_across_every_flush_path() {
        let mut b = LazyBatcher::new(3, SimDuration::from_millis(50));
        let mut shipped = 0u64;
        for i in 0..10 {
            if let Some(batch) = b.enqueue(SiteId((i % 3) as u16), entry(i), SimTime(i as u64)) {
                shipped += batch.entries.len() as u64;
            }
        }
        let s = b.entry_stats();
        assert!(s.conserved(), "after size flushes: {s:?}");
        assert_eq!(s.flushed_entries, shipped);
        for batch in b.poll_expired(SimTime(1_000_000)) {
            shipped += batch.entries.len() as u64;
        }
        let s = b.entry_stats();
        assert!(s.conserved(), "after age flushes: {s:?}");
        assert_eq!(s.flushed_entries, shipped);
        assert_eq!(s.pending, 0);
        assert_eq!(s.enqueued, 10);
    }

    #[test]
    fn crash_drain_retries_every_unflushed_entry() {
        // A node crashes with a partially filled batcher: the recovery
        // drain must hand back exactly the unflushed tail so it can be
        // re-shipped — nothing is silently dropped.
        let mut b = LazyBatcher::new(4, SimDuration::from_secs(10));
        let mut acked_to_batcher = Vec::new();
        for i in 0..10 {
            let k = format!("f{i}");
            acked_to_batcher.push(k);
            let _ = b.enqueue(SiteId(1), entry(i), SimTime(i as u64));
        }
        // 2 full batches (8 entries) flushed by size; 2 entries pending at
        // "crash" time.
        assert_eq!(b.entry_stats().flushed_entries, 8);
        assert_eq!(b.pending(), 2);
        let recovered = b.drain_for_recovery();
        let recovered_names: Vec<String> = recovered
            .iter()
            .flat_map(|batch| batch.entries.iter())
            .map(|e| e.name.as_str().to_owned())
            .collect();
        assert_eq!(recovered_names, vec!["f8", "f9"], "the unflushed tail");
        let s = b.entry_stats();
        assert!(s.conserved(), "{s:?}");
        assert_eq!(s.flushed_entries, 10, "everything accounted for");
        assert_eq!(s.pending, 0);
        // A second recovery drain is a no-op, not a double-ship.
        assert!(b.drain_for_recovery().is_empty());
    }

    #[test]
    fn eager_batcher_is_trivially_conserved() {
        let mut b = LazyBatcher::eager();
        for i in 0..5 {
            assert!(b.enqueue(SiteId(0), entry(i), SimTime(0)).is_some());
        }
        let s = b.entry_stats();
        assert!(s.conserved());
        assert_eq!(s.flushed_entries, 5);
        assert_eq!(s.flushed_batches, 5);
    }
}
