//! The four metadata-management strategies of the paper (§IV).
//!
//! Each strategy answers two questions for a key and an origin site:
//! *where must a write go* ([`WritePlan`]) and *where should a read look*
//! ([`ReadPlan`]). Everything else — transports, queueing, propagation —
//! is shared machinery.
//!
//! | Strategy | paper §IV | registry layout | sync agent |
//! |---|---|---|---|
//! | [`Centralized`] | A (baseline) | 1 instance, one site | no |
//! | [`Replicated`] | B | 1 instance per site, identical contents | yes |
//! | [`DhtNonReplicated`] | C | 1 instance per site, hash-partitioned | no |
//! | [`DhtLocalReplica`] | D | partitioned + a local replica per entry | no |

use crate::hash::SitePlacer;
use crate::plan::{ReadPlan, WritePlan};
use geometa_cache::Key;
use geometa_sim::topology::SiteId;
use std::sync::Arc;

/// Discriminant for the four strategies (configuration, reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StrategyKind {
    /// Single-instance baseline.
    Centralized,
    /// Per-site replicas kept in sync by a centralized agent.
    Replicated,
    /// DHT-partitioned, no replication ("DN" in the paper's figures).
    DhtNonReplicated,
    /// DHT-partitioned with a local replica per entry ("DR").
    DhtLocalReplica,
}

impl StrategyKind {
    /// Short label used in tables (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Centralized => "Centralized",
            StrategyKind::Replicated => "Replicated",
            StrategyKind::DhtNonReplicated => "Dec. Non-replicated",
            StrategyKind::DhtLocalReplica => "Dec. Replicated",
        }
    }

    /// All four, in the paper's presentation order.
    pub fn all() -> [StrategyKind; 4] {
        [
            StrategyKind::Centralized,
            StrategyKind::Replicated,
            StrategyKind::DhtNonReplicated,
            StrategyKind::DhtLocalReplica,
        ]
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A metadata-management strategy: pure placement policy.
pub trait MetadataStrategy: Send + Sync {
    /// Which of the four this is.
    fn kind(&self) -> StrategyKind;

    /// Plan a write of `key` originating at `origin`.
    fn write_plan(&self, key: &str, origin: SiteId) -> WritePlan;

    /// Plan a read of `key` from `origin`.
    fn read_plan(&self, key: &str, origin: SiteId) -> ReadPlan;

    /// [`Self::write_plan`] for an interned key. Hash-placed strategies
    /// override this to reuse the key's precomputed hash; the default
    /// delegates to the text version. Must agree with it.
    fn write_plan_key(&self, key: &Key, origin: SiteId) -> WritePlan {
        self.write_plan(key, origin)
    }

    /// [`Self::read_plan`] for an interned key (see
    /// [`Self::write_plan_key`]).
    fn read_plan_key(&self, key: &Key, origin: SiteId) -> ReadPlan {
        self.read_plan(key, origin)
    }

    /// Sites that host a registry instance under this strategy.
    fn registry_sites(&self) -> Vec<SiteId>;

    /// Whether this strategy relies on the background synchronization
    /// agent (only the replicated strategy does).
    fn uses_sync_agent(&self) -> bool {
        false
    }
}

/// §IV-A — the state-of-the-art baseline: one registry instance at `home`.
#[derive(Clone, Debug)]
pub struct Centralized {
    home: SiteId,
}

impl Centralized {
    /// Place the single registry at `home` ("arbitrarily placed in any of
    /// the datacenters").
    pub fn new(home: SiteId) -> Centralized {
        Centralized { home }
    }

    /// The registry's site.
    pub fn home(&self) -> SiteId {
        self.home
    }
}

impl MetadataStrategy for Centralized {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Centralized
    }

    fn write_plan(&self, _key: &str, _origin: SiteId) -> WritePlan {
        WritePlan {
            sync_targets: vec![self.home],
            async_targets: vec![],
        }
    }

    fn read_plan(&self, _key: &str, _origin: SiteId) -> ReadPlan {
        ReadPlan::single(self.home)
    }

    fn registry_sites(&self) -> Vec<SiteId> {
        vec![self.home]
    }
}

/// §IV-B — a registry instance on every site; every node operates locally;
/// a synchronization agent propagates updates between instances.
#[derive(Clone, Debug)]
pub struct Replicated {
    sites: Vec<SiteId>,
    agent_site: SiteId,
}

impl Replicated {
    /// Replicate across `sites`, with the sync agent placed at
    /// `agent_site` ("can be placed in any of the sites").
    pub fn new(sites: Vec<SiteId>, agent_site: SiteId) -> Replicated {
        assert!(!sites.is_empty(), "replicated strategy needs sites");
        assert!(
            sites.contains(&agent_site),
            "agent site must be one of the registry sites"
        );
        Replicated { sites, agent_site }
    }

    /// Where the synchronization agent runs.
    pub fn agent_site(&self) -> SiteId {
        self.agent_site
    }
}

impl MetadataStrategy for Replicated {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Replicated
    }

    fn write_plan(&self, _key: &str, origin: SiteId) -> WritePlan {
        // Local write only; the agent handles inter-site propagation.
        WritePlan {
            sync_targets: vec![origin],
            async_targets: vec![],
        }
    }

    fn read_plan(&self, _key: &str, origin: SiteId) -> ReadPlan {
        // Always local; entries written elsewhere become visible after the
        // next sync cycle (eventual consistency).
        ReadPlan::single(origin)
    }

    fn registry_sites(&self) -> Vec<SiteId> {
        self.sites.clone()
    }

    fn uses_sync_agent(&self) -> bool {
        true
    }
}

/// §IV-C — decentralized, non-replicated: the hash of the file name picks
/// the single owner site for both reads and writes.
pub struct DhtNonReplicated {
    placer: Arc<dyn SitePlacer>,
}

impl DhtNonReplicated {
    /// Partition entries across the placer's sites.
    pub fn new(placer: Arc<dyn SitePlacer>) -> DhtNonReplicated {
        DhtNonReplicated { placer }
    }

    /// The owner site of a key (exposed for tests/diagnostics).
    pub fn owner(&self, key: &str) -> SiteId {
        self.placer.owner(key)
    }
}

impl MetadataStrategy for DhtNonReplicated {
    fn kind(&self) -> StrategyKind {
        StrategyKind::DhtNonReplicated
    }

    fn write_plan(&self, key: &str, _origin: SiteId) -> WritePlan {
        WritePlan {
            sync_targets: vec![self.placer.owner(key)],
            async_targets: vec![],
        }
    }

    fn read_plan(&self, key: &str, _origin: SiteId) -> ReadPlan {
        ReadPlan::single(self.placer.owner(key))
    }

    fn write_plan_key(&self, key: &Key, _origin: SiteId) -> WritePlan {
        WritePlan {
            sync_targets: vec![self.placer.owner_key(key)],
            async_targets: vec![],
        }
    }

    fn read_plan_key(&self, key: &Key, _origin: SiteId) -> ReadPlan {
        ReadPlan::single(self.placer.owner_key(key))
    }

    fn registry_sites(&self) -> Vec<SiteId> {
        self.placer.sites()
    }
}

/// §IV-D — decentralized with local replication: writes land locally
/// (completion) and are lazily copied to the hash owner; reads probe the
/// local instance first, then the owner ("two-step hierarchical
/// procedure").
pub struct DhtLocalReplica {
    placer: Arc<dyn SitePlacer>,
}

impl DhtLocalReplica {
    /// Partition entries across the placer's sites, with local replicas.
    pub fn new(placer: Arc<dyn SitePlacer>) -> DhtLocalReplica {
        DhtLocalReplica { placer }
    }

    /// The owner site of a key (exposed for tests/diagnostics).
    pub fn owner(&self, key: &str) -> SiteId {
        self.placer.owner(key)
    }
}

impl DhtLocalReplica {
    fn write_plan_for(owner: SiteId, origin: SiteId) -> WritePlan {
        if owner == origin {
            // "When h corresponds to the local site, the metadata is not
            // further replicated."
            WritePlan {
                sync_targets: vec![origin],
                async_targets: vec![],
            }
        } else {
            WritePlan {
                sync_targets: vec![origin],
                async_targets: vec![owner],
            }
        }
    }

    fn read_plan_for(owner: SiteId, origin: SiteId) -> ReadPlan {
        if owner == origin {
            ReadPlan::single(origin)
        } else {
            ReadPlan {
                probes: vec![origin, owner],
            }
        }
    }
}

impl MetadataStrategy for DhtLocalReplica {
    fn kind(&self) -> StrategyKind {
        StrategyKind::DhtLocalReplica
    }

    fn write_plan(&self, key: &str, origin: SiteId) -> WritePlan {
        Self::write_plan_for(self.placer.owner(key), origin)
    }

    fn read_plan(&self, key: &str, origin: SiteId) -> ReadPlan {
        Self::read_plan_for(self.placer.owner(key), origin)
    }

    fn write_plan_key(&self, key: &Key, origin: SiteId) -> WritePlan {
        Self::write_plan_for(self.placer.owner_key(key), origin)
    }

    fn read_plan_key(&self, key: &Key, origin: SiteId) -> ReadPlan {
        Self::read_plan_for(self.placer.owner_key(key), origin)
    }

    fn registry_sites(&self) -> Vec<SiteId> {
        self.placer.sites()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::UniformHash;

    fn sites4() -> Vec<SiteId> {
        (0..4).map(SiteId).collect()
    }

    fn placer() -> Arc<dyn SitePlacer> {
        Arc::new(UniformHash::new(sites4()))
    }

    #[test]
    fn centralized_always_routes_home() {
        let s = Centralized::new(SiteId(1));
        for key in ["a", "b", "c"] {
            for origin in sites4() {
                assert_eq!(s.write_plan(key, origin).sync_targets, vec![SiteId(1)]);
                assert_eq!(s.read_plan(key, origin).probes, vec![SiteId(1)]);
            }
        }
        assert_eq!(s.registry_sites(), vec![SiteId(1)]);
        assert!(!s.uses_sync_agent());
    }

    #[test]
    fn replicated_is_always_local_with_agent() {
        let s = Replicated::new(sites4(), SiteId(0));
        for origin in sites4() {
            let wp = s.write_plan("f", origin);
            assert_eq!(wp.sync_targets, vec![origin]);
            assert!(wp.async_targets.is_empty());
            assert_eq!(s.read_plan("f", origin).probes, vec![origin]);
        }
        assert!(s.uses_sync_agent());
        assert_eq!(s.registry_sites().len(), 4);
    }

    #[test]
    #[should_panic(expected = "agent site must be one of the registry sites")]
    fn replicated_agent_must_live_in_a_registry_site() {
        let _ = Replicated::new(vec![SiteId(0), SiteId(1)], SiteId(3));
    }

    #[test]
    fn dht_nonreplicated_reads_and_writes_go_to_owner() {
        let s = DhtNonReplicated::new(placer());
        for key in ["file1", "file2", "file3"] {
            let owner = s.owner(key);
            for origin in sites4() {
                assert_eq!(s.write_plan(key, origin).sync_targets, vec![owner]);
                assert_eq!(s.read_plan(key, origin).probes, vec![owner]);
            }
        }
    }

    #[test]
    fn dht_nonreplicated_about_quarter_local() {
        // "on average only 1/n of the operations would be local".
        let s = DhtNonReplicated::new(placer());
        let origin = SiteId(0);
        let local = (0..10_000)
            .filter(|i| s.write_plan(&format!("f{i}"), origin).sync_targets[0] == origin)
            .count();
        assert!((2_000..3_000).contains(&local), "local count {local}");
    }

    #[test]
    fn dht_local_replica_write_completes_locally() {
        let s = DhtLocalReplica::new(placer());
        for key in ["x1", "x2", "x3", "x4"] {
            let owner = s.owner(key);
            for origin in sites4() {
                let wp = s.write_plan(key, origin);
                assert_eq!(wp.sync_targets, vec![origin], "write must complete locally");
                if owner == origin {
                    assert!(wp.async_targets.is_empty(), "no self-replication");
                } else {
                    assert_eq!(wp.async_targets, vec![owner]);
                }
            }
        }
    }

    #[test]
    fn dht_local_replica_two_step_read() {
        let s = DhtLocalReplica::new(placer());
        for key in ["y1", "y2", "y3", "y4"] {
            let owner = s.owner(key);
            for origin in sites4() {
                let rp = s.read_plan(key, origin);
                if owner == origin {
                    assert_eq!(rp.probes, vec![origin]);
                } else {
                    assert_eq!(rp.probes, vec![origin, owner]);
                }
            }
        }
    }

    #[test]
    fn local_replica_doubles_local_read_probability() {
        // Paper §IV-D: with local replication and uniform creation across
        // sites, the chance that the FIRST probe succeeds locally is
        // P(created here) + P(created elsewhere) * P(owner is here) ≈
        // 1/4 + 3/4 * 1/4 ≈ 0.44, roughly twice the non-replicated 1/4.
        // We verify the plan-level property that makes that true: the local
        // site is always probed first.
        let s = DhtLocalReplica::new(placer());
        for i in 0..100 {
            let rp = s.read_plan(&format!("k{i}"), SiteId(2));
            assert_eq!(rp.probes[0], SiteId(2));
        }
    }

    #[test]
    fn kinds_and_labels() {
        assert_eq!(StrategyKind::all().len(), 4);
        assert_eq!(StrategyKind::Centralized.label(), "Centralized");
        assert_eq!(StrategyKind::DhtLocalReplica.to_string(), "Dec. Replicated");
    }
}
