//! Per-site write-ahead logging and crash-restart recovery.
//!
//! The registry tier is memory-only; this module makes *acked* writes
//! survive a process kill. Every successful write request (`Put`,
//! `Absorb`, `Remove`) is appended to the owning site's log before the
//! ack leaves [`ServiceCore::serve`](crate::runtime::ServiceCore::serve):
//!
//! ```text
//! record   := [len: u32 LE] [crc32: u32 LE] [payload]
//! payload  := [seq: u64 LE] [now_micros: u64 LE] [RegistryRequest wire bytes]
//! ```
//!
//! The payload reuses the PR 5 wire codec verbatim, so a log record is
//! decodable with the same total decoder that guards the TCP path, and
//! the CRC covers the whole payload so a torn or bit-flipped tail is
//! detected before the request codec ever sees it.
//!
//! Two sinks implement the [`WalSink`] contract:
//!
//! * [`MemWal`] — an in-memory log for the in-process and channel
//!   deployments and for the deterministic simulation: identical
//!   append/replay semantics, no I/O, no wall-clock.
//! * [`FileWal`] — the real thing: an append-only `wal.log` plus a
//!   `snapshot.bin` per site directory, with a configurable
//!   [`FsyncPolicy`] (sync every append, group commit on a flush
//!   interval, or no syncing for throughput experiments).
//!
//! **Crash-consistency contract.** With `FsyncPolicy::Always` or
//! `GroupCommit`, a write that was acked is on disk; recovery replays it.
//! A write that was *in flight* at the kill may or may not be present —
//! the tail of the log is truncated at the first record whose CRC or
//! framing fails, so a torn append is discarded rather than replayed or
//! panicked over ("never resurrects unacked writes" is enforced by the
//! torn-tail proptest in `crates/core/tests/wal_properties.rs`).
//! Replay applies records through the same
//! [`InProcessTransport::serve`](crate::transport::InProcessTransport)
//! dispatch as live traffic, stamped with the recorded timestamps;
//! because `Put`/`Absorb`/`Remove` are last-writer-wins on those
//! timestamps, re-applying a record that is also baked into the snapshot
//! is harmless, which is what lets the snapshotter tolerate concurrent
//! appends without a global write lock.

use crate::entry::RegistryEntry;
use crate::protocol::RegistryRequest;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Header bytes per record: length + CRC32.
pub const RECORD_HEADER: usize = 8;
/// Fixed payload prefix: sequence number + timestamp.
pub const PAYLOAD_PREFIX: usize = 16;
/// Upper bound on a single record's payload (mirrors the wire codec's
/// element cap; a length field above this is torn/garbage framing).
pub const MAX_RECORD_PAYLOAD: usize = 64 * 1024 * 1024;
/// Snapshot file magic ("GWSN" — geometa WAL snapshot).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"GWSN";

// ---------------------------------------------------------------------
// CRC32 (IEEE), hand-rolled: no external crates in this tree.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed WAL failure. Torn log tails are *not* errors (they are truncated
/// during recovery and reported in [`WalRecovery::torn`]); errors are
/// real I/O failures and corrupt snapshots.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure (`context` names the operation).
    Io {
        /// What the WAL was doing.
        context: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// A snapshot file exists but fails its magic/CRC/codec checks.
    /// Unlike the log tail this is not truncatable: a snapshot is
    /// written atomically (temp + sync + rename), so corruption means
    /// the store is damaged and the operator must decide.
    CorruptSnapshot {
        /// Which file.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
    /// The WAL was asked to recover but found no state (`--recover` on
    /// an empty data dir).
    NothingToRecover {
        /// The site directory inspected.
        dir: PathBuf,
    },
    /// The sink was closed (shutdown) while the append waited for
    /// durability, and the final sync failed.
    Closed,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { context, source } => write!(f, "wal {context}: {source}"),
            WalError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            WalError::NothingToRecover { dir } => {
                write!(f, "nothing to recover in {}", dir.display())
            }
            WalError::Closed => write!(f, "wal closed during append"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(context: &'static str, source: std::io::Error) -> WalError {
    WalError::Io { context, source }
}

// ---------------------------------------------------------------------
// Records and pure log coding (proptest surface)
// ---------------------------------------------------------------------

/// One durable write: the request plus the logical timestamp it was
/// served with (replay re-serves it with the same stamp).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic per-site sequence number.
    pub seq: u64,
    /// `ServiceCore::now_micros` at serve time.
    pub now_micros: u64,
    /// The write itself.
    pub req: RegistryRequest,
}

/// Where and why decoding stopped before the end of the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first unusable record; recovery truncates here.
    pub offset: u64,
    /// Human-readable reason (short frame, CRC mismatch, codec error).
    pub reason: String,
}

/// Encode one record (header + CRC'd payload).
pub fn encode_record(seq: u64, now_micros: u64, req: &RegistryRequest) -> Vec<u8> {
    let wire = req.encode();
    let mut payload = BytesMut::with_capacity(PAYLOAD_PREFIX + wire.len());
    payload.put_u64_le(seq);
    payload.put_u64_le(now_micros);
    payload.extend_from_slice(&wire);
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode a log image into its clean prefix. Total: every byte sequence
/// yields `(records, torn)` — records up to the first short frame / bad
/// CRC / codec failure, plus where and why decoding stopped (`None` for
/// a clean log). Never panics.
pub fn decode_log(bytes: &[u8]) -> (Vec<WalRecord>, Option<TornTail>) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < RECORD_HEADER {
            return (records, torn(offset, "short header"));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if !(PAYLOAD_PREFIX..=MAX_RECORD_PAYLOAD).contains(&len) {
            return (records, torn(offset, "implausible record length"));
        }
        if rest.len() < RECORD_HEADER + len {
            return (records, torn(offset, "short payload"));
        }
        let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
        if crc32(payload) != crc {
            return (records, torn(offset, "crc mismatch"));
        }
        let mut buf = Bytes::copy_from_slice(payload);
        let seq = buf.get_u64_le();
        let now_micros = buf.get_u64_le();
        match RegistryRequest::decode(buf) {
            Ok(req) => records.push(WalRecord {
                seq,
                now_micros,
                req,
            }),
            Err(e) => return (records, torn(offset, &format!("request codec: {e:?}"))),
        }
        offset += RECORD_HEADER + len;
    }
    (records, None)
}

fn torn(offset: usize, reason: &str) -> Option<TornTail> {
    Some(TornTail {
        offset: offset as u64,
        reason: reason.to_string(),
    })
}

/// Encode a snapshot image: magic, CRC over the body, the sequence
/// number it covers, then the entries in the entry codec.
pub fn encode_snapshot(seq: u64, entries: &[RegistryEntry]) -> Vec<u8> {
    let mut body = BytesMut::new();
    body.put_u64_le(seq);
    body.put_u32_le(entries.len() as u32);
    for e in entries {
        let bytes = e.to_bytes();
        body.put_u32_le(bytes.len() as u32);
        body.extend_from_slice(&bytes);
    }
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a snapshot image. Unlike the log, a snapshot is all-or-nothing:
/// any failure is a typed error naming what broke.
pub fn decode_snapshot(path: &Path, bytes: &[u8]) -> Result<(u64, Vec<RegistryEntry>), WalError> {
    let corrupt = |detail: &str| WalError::CorruptSnapshot {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    };
    if bytes.len() < 8 + 12 {
        return Err(corrupt("short file"));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let body = &bytes[8..];
    if crc32(body) != crc {
        return Err(corrupt("crc mismatch"));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let seq = buf.get_u64_le();
    let count = buf.get_u32_le() as usize;
    if count > crate::protocol::MAX_WIRE_ENTRIES {
        return Err(corrupt("implausible entry count"));
    }
    let mut entries = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        if buf.remaining() < 4 {
            return Err(corrupt(&format!("short entry header at {i}")));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(corrupt(&format!("short entry body at {i}")));
        }
        let entry_bytes = buf.split_to(len);
        match RegistryEntry::from_bytes(entry_bytes) {
            Ok(e) => entries.push(e),
            Err(e) => return Err(corrupt(&format!("entry codec at {i}: {e:?}"))),
        }
    }
    Ok((seq, entries))
}

// ---------------------------------------------------------------------
// The sink contract
// ---------------------------------------------------------------------

/// What a deployment layer plugs behind `ServiceCore`: append writes,
/// install snapshots, expose enough state for the snapshot trigger.
pub trait WalSink: Send + Sync {
    /// Append a served write. Returns its sequence number once the
    /// record is durable *per the sink's policy* (a file sink under
    /// group commit blocks until the flusher has synced past it).
    fn append(&self, req: &RegistryRequest, now_micros: u64) -> Result<u64, WalError>;

    /// Append a run of served writes as one unit: one lock acquisition
    /// and one durability wait for the whole run instead of one per
    /// record (the per-batch cost a multi-reactor server pays when a
    /// `serve_batch` carries several writes). Records get a contiguous
    /// sequence range; the returned value is the *last* assigned seq.
    /// Semantically identical to appending each record in order — the
    /// default does exactly that for sinks without a cheaper path.
    /// Callers must not pass an empty slice.
    fn append_batch(&self, reqs: &[RegistryRequest], now_micros: u64) -> Result<u64, WalError> {
        debug_assert!(!reqs.is_empty(), "append_batch of nothing");
        let mut last = 0;
        for req in reqs {
            last = self.append(req, now_micros)?;
        }
        Ok(last)
    }

    /// Replace the snapshot with the entries produced by `collect` and
    /// drop the log records it covers. `collect` runs under the sink's
    /// append lock so no record can land in the log without its effect
    /// being visible to the collection.
    fn install_snapshot(
        &self,
        collect: &mut dyn FnMut() -> Vec<RegistryEntry>,
    ) -> Result<(), WalError>;

    /// Records appended since the last snapshot (the snapshot trigger).
    fn records_since_snapshot(&self) -> u64;

    /// The sequence number the next append will be assigned — i.e. one
    /// past the highest record ever written (0 for a fresh log). The ops
    /// surface reports this as the site's WAL position.
    fn next_seq(&self) -> u64;

    /// Flush everything and stop background machinery. Idempotent.
    fn close(&self);
}

// ---------------------------------------------------------------------
// MemWal — deterministic in-memory sink
// ---------------------------------------------------------------------

#[derive(Default)]
struct MemWalInner {
    records: Vec<WalRecord>,
    snapshot: Vec<RegistryEntry>,
    snapshot_seq: u64,
    next_seq: u64,
}

/// In-memory WAL: the deployment layers that never touch disk (channel
/// layer, DES binding) get identical append/replay semantics without
/// I/O, and the chaos oracle can read the "log" back to audit
/// durability the same way the physical test reads `wal.log`.
#[derive(Default)]
pub struct MemWal {
    inner: Mutex<MemWalInner>,
}

impl MemWal {
    /// Fresh, empty sink.
    pub fn new() -> MemWal {
        MemWal::default()
    }

    /// The live log (records since the last snapshot), in append order.
    pub fn records(&self) -> Vec<WalRecord> {
        self.inner.lock().records.clone()
    }

    /// The last installed snapshot.
    pub fn snapshot(&self) -> Vec<RegistryEntry> {
        self.inner.lock().snapshot.clone()
    }

    /// Everything a restart would recover: snapshot entries plus the
    /// replayable tail.
    pub fn recovery(&self) -> WalRecovery {
        let inner = self.inner.lock();
        WalRecovery {
            entries: inner.snapshot.clone(),
            tail: inner.records.clone(),
            snapshot_seq: inner.snapshot_seq,
            torn: None,
        }
    }
}

impl WalSink for MemWal {
    fn append(&self, req: &RegistryRequest, now_micros: u64) -> Result<u64, WalError> {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.records.push(WalRecord {
            seq,
            now_micros,
            req: req.clone(),
        });
        Ok(seq)
    }

    fn append_batch(&self, reqs: &[RegistryRequest], now_micros: u64) -> Result<u64, WalError> {
        debug_assert!(!reqs.is_empty(), "append_batch of nothing");
        let mut inner = self.inner.lock();
        let mut last = inner.next_seq;
        for req in reqs {
            let seq = inner.next_seq;
            inner.next_seq = seq + 1;
            inner.records.push(WalRecord {
                seq,
                now_micros,
                req: req.clone(),
            });
            last = seq;
        }
        Ok(last)
    }

    fn install_snapshot(
        &self,
        collect: &mut dyn FnMut() -> Vec<RegistryEntry>,
    ) -> Result<(), WalError> {
        let mut inner = self.inner.lock();
        inner.snapshot = collect();
        inner.snapshot_seq = inner.next_seq;
        inner.records.clear();
        Ok(())
    }

    fn records_since_snapshot(&self) -> u64 {
        self.inner.lock().records.len() as u64
    }

    fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    fn close(&self) {}
}

// ---------------------------------------------------------------------
// FileWal — the real on-disk sink
// ---------------------------------------------------------------------

/// When appended records become durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `sync_data` after every append (durable before every ack; one
    /// fsync per write).
    Always,
    /// Group commit: appends block until a background flusher's next
    /// `sync_data` covers them; one fsync amortizes every append that
    /// arrived within the flush interval. Acked ⇒ durable still holds.
    GroupCommit(Duration),
    /// Never sync (throughput experiments; an OS crash can lose acked
    /// writes — a *process* kill cannot, the page cache survives).
    Never,
}

impl FsyncPolicy {
    /// Parse the `--fsync` operator flag.
    pub fn parse(s: &str, group_interval: Duration) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "group" => Some(FsyncPolicy::GroupCommit(group_interval)),
            "off" | "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// What a restart found on disk.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Entries from the snapshot (empty without one).
    pub entries: Vec<RegistryEntry>,
    /// Log records to replay on top, in sequence order.
    pub tail: Vec<WalRecord>,
    /// Sequence number the snapshot covers.
    pub snapshot_seq: u64,
    /// Set when the log ended in a torn record (which was truncated).
    pub torn: Option<TornTail>,
}

impl WalRecovery {
    /// True when the directory held neither snapshot nor records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.tail.is_empty()
    }
}

struct FileWalState {
    file: File,
    next_seq: u64,
    appended_seq: u64,
    synced_seq: u64,
    records_since_snapshot: u64,
    stop: bool,
    sick: Option<String>,
}

struct FileWalShared {
    state: Mutex<FileWalState>,
    synced: Condvar,
    policy: FsyncPolicy,
}

/// File-backed per-site WAL: `<dir>/wal.log` + `<dir>/snapshot.bin`.
pub struct FileWal {
    dir: PathBuf,
    shared: Arc<FileWalShared>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Log file name inside a site directory.
pub const LOG_FILE: &str = "wal.log";
/// Snapshot file name inside a site directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Read and decode a site's log file (the physical chaos test uses this
/// to audit durability against the raw on-disk bytes).
pub fn read_log_file(path: &Path) -> Result<(Vec<WalRecord>, Option<TornTail>), WalError> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(decode_log(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok((Vec::new(), None)),
        Err(e) => Err(io_err("read log", e)),
    }
}

/// Read and decode a site's snapshot file (`Ok(None)` when absent).
pub fn read_snapshot_file(path: &Path) -> Result<Option<(u64, Vec<RegistryEntry>)>, WalError> {
    match std::fs::read(path) {
        Ok(bytes) => decode_snapshot(path, &bytes).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err("read snapshot", e)),
    }
}

impl FileWal {
    /// Open (creating if needed) the WAL in `dir` and recover whatever
    /// state it holds: load the snapshot, decode the log, truncate a
    /// torn tail in place, position the append cursor after the last
    /// good record. The caller replays [`WalRecovery`] into its
    /// registry before serving.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<(FileWal, WalRecovery), WalError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create data dir", e))?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let log_path = dir.join(LOG_FILE);
        let (snapshot_seq, entries) = match read_snapshot_file(&snap_path)? {
            Some((seq, entries)) => (seq, entries),
            None => (0, Vec::new()),
        };
        let (mut tail, torn) = read_log_file(&log_path)?;
        // Records already covered by the snapshot replay harmlessly, but
        // dropping them keeps restart cost proportional to the tail.
        tail.retain(|r| r.seq >= snapshot_seq);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&log_path)
            .map_err(|e| io_err("open log", e))?;
        if let Some(t) = &torn {
            // Discard the torn tail on disk too, so the next append
            // starts at a clean frame boundary.
            file.set_len(t.offset)
                .map_err(|e| io_err("truncate torn tail", e))?;
            file.sync_data().map_err(|e| io_err("sync truncation", e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek log end", e))?;
        let next_seq = tail
            .iter()
            .map(|r| r.seq + 1)
            .max()
            .unwrap_or(snapshot_seq)
            .max(snapshot_seq);
        let shared = Arc::new(FileWalShared {
            state: Mutex::new(FileWalState {
                file,
                next_seq,
                appended_seq: next_seq.saturating_sub(1),
                synced_seq: next_seq.saturating_sub(1),
                records_since_snapshot: tail.len() as u64,
                stop: false,
                sick: None,
            }),
            synced: Condvar::new(),
            policy,
        });
        let wal = FileWal {
            dir: dir.to_path_buf(),
            shared: Arc::clone(&shared),
            flusher: Mutex::new(None),
        };
        if let FsyncPolicy::GroupCommit(interval) = policy {
            let shared = Arc::clone(&shared);
            // geometa-lint: allow(untracked-thread) the flusher is joined by close()/Drop, and FileWal is owned by ServiceCore whose shutdown closes every sink
            let handle = std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || flusher_loop(&shared, interval))
                .map_err(|e| io_err("spawn flusher", e))?;
            *wal.flusher.lock() = Some(handle);
        }
        let recovery = WalRecovery {
            entries,
            tail,
            snapshot_seq,
            torn,
        };
        Ok((wal, recovery))
    }

    /// The site directory this WAL writes under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn flusher_loop(shared: &FileWalShared, interval: Duration) {
    let mut state = shared.state.lock();
    loop {
        if state.appended_seq > state.synced_seq && state.sick.is_none() {
            match state.file.sync_data() {
                Ok(()) => state.synced_seq = state.appended_seq,
                Err(e) => state.sick = Some(format!("flusher sync_data: {e}")),
            }
            shared.synced.notify_all();
        }
        if state.stop {
            shared.synced.notify_all();
            return;
        }
        // Group-commit pacing: wake on the interval (or on close()).
        let _ = shared.synced.wait_for(&mut state, interval);
    }
}

impl WalSink for FileWal {
    fn append(&self, req: &RegistryRequest, now_micros: u64) -> Result<u64, WalError> {
        let mut state = self.shared.state.lock();
        if let Some(sick) = &state.sick {
            return Err(io_err(
                "append on sick wal",
                std::io::Error::other(sick.clone()),
            ));
        }
        let seq = state.next_seq;
        let buf = encode_record(seq, now_micros, req);
        // geometa-lint: allow(durability) Always syncs two lines down; GroupCommit blocks below until the flusher's sync_data covers this record; Never is the documented opt-out
        if let Err(e) = state.file.write_all(&buf) {
            state.sick = Some(format!("append write_all: {e}"));
            return Err(io_err("append", e));
        }
        state.next_seq = seq + 1;
        state.appended_seq = seq;
        state.records_since_snapshot += 1;
        match self.shared.policy {
            FsyncPolicy::Never => Ok(seq),
            FsyncPolicy::Always => {
                state.file.sync_data().map_err(|e| io_err("sync_data", e))?;
                state.synced_seq = seq;
                Ok(seq)
            }
            FsyncPolicy::GroupCommit(_) => {
                // Wake the flusher early if it is parked on its interval
                // with nothing else pending; then wait for durability.
                self.shared.synced.notify_all();
                while state.synced_seq < seq && !state.stop && state.sick.is_none() {
                    self.shared.synced.wait(&mut state);
                }
                if let Some(sick) = &state.sick {
                    return Err(io_err("group commit", std::io::Error::other(sick.clone())));
                }
                if state.synced_seq < seq {
                    // Closed mid-wait: take over the final sync so the
                    // ack still implies durability.
                    state.file.sync_data().map_err(|_| WalError::Closed)?;
                    state.synced_seq = state.appended_seq;
                }
                Ok(seq)
            }
        }
    }

    fn append_batch(&self, reqs: &[RegistryRequest], now_micros: u64) -> Result<u64, WalError> {
        debug_assert!(!reqs.is_empty(), "append_batch of nothing");
        let mut state = self.shared.state.lock();
        if let Some(sick) = &state.sick {
            return Err(io_err(
                "append on sick wal",
                std::io::Error::other(sick.clone()),
            ));
        }
        // Write the whole run under one lock hold: the records get a
        // contiguous seq range and — under group commit — share a single
        // durability wait on the last seq, so N writes in one serve batch
        // cost one flusher round-trip instead of N.
        let mut last = state.next_seq;
        for req in reqs {
            let seq = state.next_seq;
            let buf = encode_record(seq, now_micros, req);
            // geometa-lint: allow(durability) the policy branch below covers the whole run, mirroring append()
            if let Err(e) = state.file.write_all(&buf) {
                state.sick = Some(format!("append write_all: {e}"));
                return Err(io_err("append", e));
            }
            state.next_seq = seq + 1;
            state.appended_seq = seq;
            state.records_since_snapshot += 1;
            last = seq;
        }
        match self.shared.policy {
            FsyncPolicy::Never => Ok(last),
            FsyncPolicy::Always => {
                state.file.sync_data().map_err(|e| io_err("sync_data", e))?;
                state.synced_seq = last;
                Ok(last)
            }
            FsyncPolicy::GroupCommit(_) => {
                self.shared.synced.notify_all();
                while state.synced_seq < last && !state.stop && state.sick.is_none() {
                    self.shared.synced.wait(&mut state);
                }
                if let Some(sick) = &state.sick {
                    return Err(io_err("group commit", std::io::Error::other(sick.clone())));
                }
                if state.synced_seq < last {
                    // Closed mid-wait: take over the final sync so the
                    // ack still implies durability.
                    state.file.sync_data().map_err(|_| WalError::Closed)?;
                    state.synced_seq = state.appended_seq;
                }
                Ok(last)
            }
        }
    }

    fn install_snapshot(
        &self,
        collect: &mut dyn FnMut() -> Vec<RegistryEntry>,
    ) -> Result<(), WalError> {
        // Hold the append lock across collect + write + truncate: no
        // record can be appended whose effect the collection missed
        // (appends apply to the registry before they reach the log).
        let mut state = self.shared.state.lock();
        let seq = state.next_seq;
        let entries = collect();
        let image = encode_snapshot(seq, &entries);
        let tmp = self.dir.join("snapshot.tmp");
        let final_path = self.dir.join(SNAPSHOT_FILE);
        let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot temp", e))?;
        f.write_all(&image)
            .map_err(|e| io_err("write snapshot", e))?;
        f.sync_all().map_err(|e| io_err("sync snapshot", e))?;
        drop(f);
        std::fs::rename(&tmp, &final_path).map_err(|e| io_err("rename snapshot", e))?;
        // Persist the rename itself (directory metadata).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // Every record in the log has seq < next_seq and its effect is
        // in the snapshot; drop them all.
        state
            .file
            .set_len(0)
            .map_err(|e| io_err("truncate log", e))?;
        state
            .file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("rewind log", e))?;
        state
            .file
            .sync_data()
            .map_err(|e| io_err("sync truncated log", e))?;
        state.records_since_snapshot = 0;
        state.synced_seq = state.appended_seq;
        Ok(())
    }

    fn records_since_snapshot(&self) -> u64 {
        self.shared.state.lock().records_since_snapshot
    }

    fn next_seq(&self) -> u64 {
        self.shared.state.lock().next_seq
    }

    fn close(&self) {
        {
            let mut state = self.shared.state.lock();
            if state.appended_seq > state.synced_seq && state.sick.is_none() {
                if let Err(e) = state.file.sync_data() {
                    state.sick = Some(format!("close sync_data: {e}"));
                } else {
                    state.synced_seq = state.appended_seq;
                }
            }
            state.stop = true;
            self.shared.synced.notify_all();
        }
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FileWal {
    fn drop(&mut self) {
        self.close();
    }
}

impl fmt::Debug for FileWal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileWal").field("dir", &self.dir).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;
    use geometa_sim::topology::SiteId;

    fn put(name: &str, t: u64) -> RegistryRequest {
        RegistryRequest::Put {
            entry: RegistryEntry::new(
                name,
                64,
                FileLocation {
                    site: SiteId(0),
                    node: 1,
                },
                t,
            ),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "geometa-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        let req = put("wal/a", 7);
        let bytes = encode_record(3, 99, &req);
        let (records, torn) = decode_log(&bytes);
        assert!(torn.is_none());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 3);
        assert_eq!(records[0].now_micros, 99);
        assert!(records[0].req.is_write());
    }

    #[test]
    fn torn_tail_truncates_never_panics() {
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for i in 0..5 {
            log.extend_from_slice(&encode_record(i, i * 10, &put(&format!("k{i}"), i)));
            boundaries.push(log.len());
        }
        assert_eq!(decode_log(&log).0.len(), 5);
        for cut in 0..log.len() {
            // Every truncation yields a clean prefix: decoded records
            // are exactly the complete leading records, in order, and a
            // cut inside a record is reported as a torn tail.
            let (records, torn) = decode_log(&log[..cut]);
            assert!(records.len() <= 5);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(r.seq, i as u64);
            }
            assert!(boundaries[records.len()] <= cut);
            if !boundaries.contains(&cut) {
                assert!(torn.is_some(), "cut at {cut} lost the torn marker");
            }
        }
    }

    #[test]
    fn corrupted_byte_detected_by_crc() {
        let log = encode_record(0, 1, &put("x", 1));
        for i in RECORD_HEADER..log.len() {
            let mut bad = log.clone();
            bad[i] ^= 0xFF;
            let (records, torn) = decode_log(&bad);
            assert!(records.is_empty(), "byte {i} slipped past the crc");
            assert!(torn.is_some());
        }
    }

    #[test]
    fn mem_wal_append_snapshot_recover() {
        let wal = MemWal::new();
        for i in 0..10u64 {
            wal.append(&put(&format!("m{i}"), i), i).unwrap();
        }
        assert_eq!(wal.records_since_snapshot(), 10);
        wal.install_snapshot(&mut || {
            vec![RegistryEntry::new(
                "snap",
                1,
                FileLocation {
                    site: SiteId(0),
                    node: 0,
                },
                5,
            )]
        })
        .unwrap();
        assert_eq!(wal.records_since_snapshot(), 0);
        wal.append(&put("after", 11), 11).unwrap();
        let rec = wal.recovery();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.snapshot_seq, 10);
    }

    #[test]
    fn append_batch_matches_sequential_appends() {
        // MemWal: one batched run produces the same log as N appends.
        let loop_wal = MemWal::new();
        let batch_wal = MemWal::new();
        let reqs: Vec<RegistryRequest> = (0..5u64).map(|i| put(&format!("b{i}"), i)).collect();
        let mut last = 0;
        for r in &reqs {
            last = loop_wal.append(r, 42).unwrap();
        }
        assert_eq!(batch_wal.append_batch(&reqs, 42).unwrap(), last);
        assert_eq!(loop_wal.records(), batch_wal.records());
        assert_eq!(loop_wal.next_seq(), batch_wal.next_seq());

        // FileWal under group commit: contiguous seq range, one durable
        // run, and the recovered log is byte-for-byte what N appends
        // would have produced.
        let dir_a = temp_dir("batch-a");
        let dir_b = temp_dir("batch-b");
        {
            let (wal, _) =
                FileWal::open(&dir_a, FsyncPolicy::GroupCommit(Duration::from_millis(1))).unwrap();
            assert_eq!(wal.append_batch(&reqs, 42).unwrap(), 4);
            assert_eq!(wal.next_seq(), 5);
            wal.close();
        }
        {
            let (wal, _) = FileWal::open(&dir_b, FsyncPolicy::Always).unwrap();
            for r in &reqs {
                wal.append(r, 42).unwrap();
            }
            wal.close();
        }
        let log_a = std::fs::read(dir_a.join("wal.log")).unwrap();
        let log_b = std::fs::read(dir_b.join("wal.log")).unwrap();
        assert_eq!(log_a, log_b, "batched and sequential logs must match");
        let (records, torn) = decode_log(&log_a);
        assert!(torn.is_none());
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn file_wal_persists_across_reopen() {
        let dir = temp_dir("reopen");
        {
            let (wal, rec) = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
            assert!(rec.is_empty());
            for i in 0..20u64 {
                wal.append(&put(&format!("f{i}"), i), i).unwrap();
            }
            wal.close();
        }
        let (_wal, rec) = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert!(rec.torn.is_none());
        assert_eq!(rec.tail.len(), 20);
        assert_eq!(rec.tail[19].seq, 19);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_wal_snapshot_truncates_log() {
        let dir = temp_dir("snap");
        {
            let (wal, _) = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
            for i in 0..8u64 {
                wal.append(&put(&format!("s{i}"), i), i).unwrap();
            }
            wal.install_snapshot(&mut || {
                (0..8u64)
                    .map(|i| {
                        RegistryEntry::new(
                            format!("s{i}"),
                            64,
                            FileLocation {
                                site: SiteId(0),
                                node: 1,
                            },
                            i,
                        )
                    })
                    .collect()
            })
            .unwrap();
            wal.append(&put("tail", 9), 9).unwrap();
            wal.close();
        }
        let (_wal, rec) = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.entries.len(), 8);
        assert_eq!(rec.snapshot_seq, 8);
        assert_eq!(rec.tail.len(), 1, "only the post-snapshot tail remains");
        assert_eq!(rec.tail[0].seq, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_wal_truncates_torn_tail_on_open() {
        let dir = temp_dir("torn");
        {
            let (wal, _) = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
            for i in 0..4u64 {
                wal.append(&put(&format!("t{i}"), i), i).unwrap();
            }
            wal.close();
        }
        // Tear the last record in half.
        let log_path = dir.join(LOG_FILE);
        let bytes = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &bytes[..bytes.len() - 5]).unwrap();
        let (wal, rec) = FileWal::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.tail.len(), 3);
        let t = rec.torn.expect("torn tail must be reported");
        assert_eq!(
            std::fs::metadata(&log_path).unwrap().len(),
            t.offset,
            "the torn bytes must be gone from disk"
        );
        // Appends continue cleanly after the truncation; the re-used
        // sequence number is the torn record's (which was never acked).
        wal.append(&put("t-new", 9), 9).unwrap();
        wal.close();
        let (records, torn) = read_log_file(&log_path).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_acks_are_durable() {
        let dir = temp_dir("group");
        let (wal, _) =
            FileWal::open(&dir, FsyncPolicy::GroupCommit(Duration::from_millis(2))).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..25u64 {
                        wal.append(&put(&format!("g{w}/{i}"), i), i).unwrap();
                    }
                });
            }
        });
        wal.close();
        let (records, torn) = read_log_file(&dir.join(LOG_FILE)).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 100);
        // Sequence numbers are dense and unique.
        let mut seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = temp_dir("badsnap");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), b"GWSNgarbagegarbagegarbage").unwrap();
        match FileWal::open(&dir, FsyncPolicy::Always) {
            Err(WalError::CorruptSnapshot { .. }) => {}
            other => panic!("expected CorruptSnapshot, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
