//! A registry instance: one site's metadata service.
//!
//! Wraps the high-availability cache pair from `geometa-cache` with the
//! registry semantics of the paper (§IV): a *write* is "a look-up read
//! operation to verify whether the entry already exists, followed by the
//! actual write" — existing entries are merged (location union), fresh
//! entries created. A *read* returns the decoded entry.

use crate::consistency::merge_entries;
use crate::entry::RegistryEntry;
use crate::MetaError;
use geometa_cache::{CacheError, HaCache, Key};
use geometa_sim::topology::SiteId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcome of a registry write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The entry did not exist; this write created it.
    Created,
    /// The entry existed; this write merged into it.
    Updated,
}

/// One site's metadata registry service.
pub struct RegistryInstance {
    site: SiteId,
    cache: HaCache,
    gets: AtomicU64,
    puts: AtomicU64,
    absorbs: AtomicU64,
}

impl RegistryInstance {
    /// Create the instance for `site` with `shards`-way sharded caches.
    pub fn new(site: SiteId, shards: usize) -> RegistryInstance {
        RegistryInstance {
            site,
            cache: HaCache::new(shards),
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            absorbs: AtomicU64::new(0),
        }
    }

    /// The site this instance serves.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Read an entry.
    pub fn get(&self, key: &str) -> Result<RegistryEntry, MetaError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        match self.cache.get(key) {
            Ok(e) => RegistryEntry::from_bytes(e.value),
            Err(CacheError::NotFound) => Err(MetaError::NotFound),
            Err(CacheError::Unavailable) => Err(MetaError::Unavailable),
            Err(e) => Err(MetaError::Codec(e.to_string())),
        }
    }

    /// Read an entry by interned key (the RPC path: the client interned the
    /// key once and it rides the request, so no hashing happens here).
    pub fn get_key(&self, key: &Key) -> Result<RegistryEntry, MetaError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        match self.cache.get_key(key) {
            Ok(e) => RegistryEntry::from_bytes(e.value),
            Err(CacheError::NotFound) => Err(MetaError::NotFound),
            Err(CacheError::Unavailable) => Err(MetaError::Unavailable),
            Err(e) => Err(MetaError::Codec(e.to_string())),
        }
    }

    /// Batched [`Self::get_key`]: one shard lock per shard group via the
    /// HA pair's batch read, results in request order. Each key still
    /// counts as one get.
    pub fn multi_get_keys(&self, keys: &[Key]) -> Vec<Result<RegistryEntry, MetaError>> {
        self.gets.fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.cache
            .multi_get_keys(keys)
            .into_iter()
            .map(|r| match r {
                Ok(e) => RegistryEntry::from_bytes(e.value),
                Err(CacheError::NotFound) => Err(MetaError::NotFound),
                Err(CacheError::Unavailable) => Err(MetaError::Unavailable),
                Err(e) => Err(MetaError::Codec(e.to_string())),
            })
            .collect()
    }

    /// Batched [`Self::get`] by borrowed key text — the reactor's
    /// zero-copy request path parses keys as `&str` views into the wire
    /// buffer and never interns a [`Key`]. One shard lock per shard
    /// group, results in request order; each key counts as one get.
    pub fn multi_get(&self, keys: &[&str]) -> Vec<Result<RegistryEntry, MetaError>> {
        self.gets.fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.cache
            .multi_get(keys)
            .into_iter()
            .map(|r| match r {
                Ok(e) => RegistryEntry::from_bytes(e.value),
                Err(CacheError::NotFound) => Err(MetaError::NotFound),
                Err(CacheError::Unavailable) => Err(MetaError::Unavailable),
                Err(e) => Err(MetaError::Codec(e.to_string())),
            })
            .collect()
    }

    /// Publish an entry: the paper's lookup-then-write sequence, with
    /// optimistic-concurrency retry. Existing entries are merged.
    ///
    /// The entry's key is interned once up front; every retry of the OCC
    /// loop (a get plus a conditional put, each touching the HA pair's
    /// primary and mirror) then runs without hashing or key allocation.
    pub fn put(&self, entry: &RegistryEntry, now: u64) -> Result<WriteOutcome, MetaError> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        let key = entry.cache_key();
        // OCC loop: read current, merge, conditional write.
        for _ in 0..64 {
            match self.cache.get_key(&key) {
                Ok(cur) => {
                    let existing = RegistryEntry::from_bytes(cur.value)?;
                    let merged = merge_entries(&existing, entry);
                    match self.cache.put_if_key(
                        &key,
                        geometa_cache::PutCondition::VersionIs(cur.version),
                        merged.to_bytes(),
                        now,
                    ) {
                        Ok(_) => return Ok(WriteOutcome::Updated),
                        Err(CacheError::VersionMismatch { .. }) => continue,
                        Err(CacheError::Unavailable) => return Err(MetaError::Unavailable),
                        Err(e) => return Err(MetaError::Codec(e.to_string())),
                    }
                }
                Err(CacheError::NotFound) => {
                    match self.cache.put_if_key(
                        &key,
                        geometa_cache::PutCondition::Absent,
                        entry.to_bytes(),
                        now,
                    ) {
                        Ok(_) => return Ok(WriteOutcome::Created),
                        Err(CacheError::AlreadyExists { .. }) => continue,
                        Err(CacheError::Unavailable) => return Err(MetaError::Unavailable),
                        Err(e) => return Err(MetaError::Codec(e.to_string())),
                    }
                }
                Err(CacheError::Unavailable) => return Err(MetaError::Unavailable),
                Err(e) => return Err(MetaError::Codec(e.to_string())),
            }
        }
        Err(MetaError::Contention)
    }

    /// Absorb an entry propagated from another instance (lazy update or
    /// sync-agent push). Merges like [`Self::put`] but counts separately,
    /// because propagation traffic is not client load.
    ///
    /// Crucially, the absorbed entry keeps its **origin timestamp** as the
    /// cache modification time instead of the local clock. Otherwise a
    /// propagated entry would look freshly modified here, the sync agent's
    /// next delta pull would pick it up again, and every entry would
    /// ping-pong between instances forever.
    pub fn absorb(&self, entry: &RegistryEntry) -> Result<(), MetaError> {
        let now = entry.created_at;
        self.absorbs.fetch_add(1, Ordering::Relaxed);
        let key = entry.cache_key();
        for _ in 0..64 {
            match self.cache.get_key(&key) {
                Ok(cur) => {
                    let existing = RegistryEntry::from_bytes(cur.value)?;
                    let merged = merge_entries(&existing, entry);
                    if merged == existing {
                        return Ok(()); // already subsumed
                    }
                    match self.cache.put_if_key(
                        &key,
                        geometa_cache::PutCondition::VersionIs(cur.version),
                        merged.to_bytes(),
                        now,
                    ) {
                        Ok(_) => return Ok(()),
                        Err(CacheError::VersionMismatch { .. }) => continue,
                        Err(CacheError::Unavailable) => return Err(MetaError::Unavailable),
                        Err(e) => return Err(MetaError::Codec(e.to_string())),
                    }
                }
                Err(CacheError::NotFound) => {
                    match self.cache.put_if_key(
                        &key,
                        geometa_cache::PutCondition::Absent,
                        entry.to_bytes(),
                        now,
                    ) {
                        Ok(_) => return Ok(()),
                        Err(CacheError::AlreadyExists { .. }) => continue,
                        Err(CacheError::Unavailable) => return Err(MetaError::Unavailable),
                        Err(e) => return Err(MetaError::Codec(e.to_string())),
                    }
                }
                Err(CacheError::Unavailable) => return Err(MetaError::Unavailable),
                Err(e) => return Err(MetaError::Codec(e.to_string())),
            }
        }
        Err(MetaError::Contention)
    }

    /// Absorb a batch (one sync push).
    pub fn absorb_batch(&self, entries: &[RegistryEntry]) -> Result<usize, MetaError> {
        for e in entries {
            self.absorb(e)?;
        }
        Ok(entries.len())
    }

    /// Remove an entry.
    pub fn remove(&self, key: &str) -> Result<(), MetaError> {
        match self.cache.remove(key) {
            Ok(_) => Ok(()),
            Err(CacheError::NotFound) => Err(MetaError::NotFound),
            Err(CacheError::Unavailable) => Err(MetaError::Unavailable),
            Err(e) => Err(MetaError::Codec(e.to_string())),
        }
    }

    /// Remove an entry by interned key (the RPC path).
    pub fn remove_key(&self, key: &Key) -> Result<(), MetaError> {
        match self.cache.remove_key(key) {
            Ok(_) => Ok(()),
            Err(CacheError::NotFound) => Err(MetaError::NotFound),
            Err(CacheError::Unavailable) => Err(MetaError::Unavailable),
            Err(e) => Err(MetaError::Codec(e.to_string())),
        }
    }

    /// Every entry currently stored (used by elastic rebalancing).
    pub fn all_entries(&self) -> Vec<RegistryEntry> {
        self.cache
            .primary()
            .snapshot()
            .into_iter()
            .filter_map(|(_, e)| RegistryEntry::from_bytes(e.value).ok())
            .collect()
    }

    /// All entries modified strictly after `since` (the sync agent's delta
    /// query).
    pub fn delta_since(&self, since: u64) -> Vec<RegistryEntry> {
        self.cache
            .primary()
            .modified_since(since)
            .into_iter()
            .filter_map(|(_, e)| RegistryEntry::from_bytes(e.value).ok())
            .collect()
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when the registry holds no entries.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Inject a primary-cache failure (failover exercise).
    pub fn fail_primary(&self) {
        self.cache.fail_primary();
    }

    /// Drop every entry from both cache stores: process-kill amnesia for
    /// crash-recovery exercises. Unlike [`Self::fail_primary`] (which
    /// models a cache-tier failover with the replica surviving), a wipe
    /// models full process death — everything in memory is gone and only
    /// external state (a write-ahead log) can bring it back. Returns the
    /// number of entries lost; the op counters survive (lifetime
    /// accounting, not state).
    pub fn wipe(&self) -> usize {
        let entries = self.all_entries();
        for e in &entries {
            let _ = self.cache.remove(e.name.as_str());
        }
        entries.len()
    }

    /// (gets, puts, absorbs) served so far.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (
            self.gets.load(Ordering::Relaxed),
            self.puts.load(Ordering::Relaxed),
            self.absorbs.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for RegistryInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (g, p, a) = self.op_counts();
        f.debug_struct("RegistryInstance")
            .field("site", &self.site)
            .field("entries", &self.len())
            .field("gets", &g)
            .field("puts", &p)
            .field("absorbs", &a)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;

    fn loc(site: u16, node: u32) -> FileLocation {
        FileLocation {
            site: SiteId(site),
            node,
        }
    }

    fn reg() -> RegistryInstance {
        RegistryInstance::new(SiteId(0), 8)
    }

    #[test]
    fn put_then_get_roundtrips() {
        let r = reg();
        let e = RegistryEntry::new("f", 123, loc(0, 1), 10).with_producer("t0");
        assert_eq!(r.put(&e, 10).unwrap(), WriteOutcome::Created);
        let back = r.get("f").unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn get_missing_is_not_found() {
        assert_eq!(reg().get("ghost"), Err(MetaError::NotFound));
    }

    #[test]
    fn wipe_forgets_everything_including_the_replica() {
        let r = reg();
        r.put(&RegistryEntry::new("a", 1, loc(0, 1), 10), 10)
            .unwrap();
        r.put(&RegistryEntry::new("b", 2, loc(0, 2), 11), 11)
            .unwrap();
        assert_eq!(r.wipe(), 2);
        assert!(r.is_empty());
        assert_eq!(r.get("a"), Err(MetaError::NotFound));
        // A primary failure after the wipe must not resurrect entries
        // from the replica — the wipe hit both stores.
        r.fail_primary();
        assert_eq!(r.get("b"), Err(MetaError::NotFound));
    }

    #[test]
    fn second_put_merges_locations() {
        let r = reg();
        r.put(&RegistryEntry::new("f", 100, loc(0, 1), 10), 10)
            .unwrap();
        let out = r
            .put(&RegistryEntry::new("f", 100, loc(2, 9), 20), 20)
            .unwrap();
        assert_eq!(out, WriteOutcome::Updated);
        let e = r.get("f").unwrap();
        assert_eq!(e.locations.len(), 2);
        assert!(e.available_at(SiteId(0)) && e.available_at(SiteId(2)));
    }

    #[test]
    fn absorb_is_idempotent() {
        let r = reg();
        let e = RegistryEntry::new("f", 100, loc(1, 2), 5);
        r.absorb(&e).unwrap();
        r.absorb(&e).unwrap();
        assert_eq!(r.len(), 1);
        let (_, _, absorbs) = r.op_counts();
        assert_eq!(absorbs, 2);
    }

    #[test]
    fn absorb_batch_counts() {
        let r = reg();
        let batch: Vec<_> = (0..10)
            .map(|i| RegistryEntry::new(format!("f{i}"), 1, loc(0, i), i as u64))
            .collect();
        assert_eq!(r.absorb_batch(&batch).unwrap(), 10);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn delta_since_filters_by_time() {
        let r = reg();
        r.put(&RegistryEntry::new("old", 1, loc(0, 0), 5), 5)
            .unwrap();
        r.put(&RegistryEntry::new("new", 1, loc(0, 0), 50), 50)
            .unwrap();
        let delta = r.delta_since(10);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].name, "new");
        assert_eq!(r.delta_since(0).len(), 2);
        assert!(r.delta_since(100).is_empty());
    }

    #[test]
    fn remove_works() {
        let r = reg();
        r.put(&RegistryEntry::new("f", 1, loc(0, 0), 0), 0).unwrap();
        r.remove("f").unwrap();
        assert_eq!(r.get("f"), Err(MetaError::NotFound));
        assert_eq!(r.remove("f"), Err(MetaError::NotFound));
    }

    #[test]
    fn survives_primary_failure() {
        let r = reg();
        for i in 0..50 {
            r.put(
                &RegistryEntry::new(format!("f{i}"), 1, loc(0, i), i as u64),
                i as u64,
            )
            .unwrap();
        }
        r.fail_primary();
        for i in 0..50 {
            assert!(r.get(&format!("f{i}")).is_ok(), "f{i} lost after failover");
        }
    }

    #[test]
    fn concurrent_puts_on_same_key_merge_all_locations() {
        let r = reg();
        std::thread::scope(|s| {
            for n in 0..8u32 {
                let r = &r;
                s.spawn(move || {
                    r.put(
                        &RegistryEntry::new("shared", 1, loc((n % 4) as u16, n), 1),
                        1,
                    )
                    .unwrap();
                });
            }
        });
        let e = r.get("shared").unwrap();
        assert_eq!(e.locations.len(), 8, "all concurrent locations must merge");
    }

    #[test]
    fn op_counters_track_traffic() {
        let r = reg();
        r.put(&RegistryEntry::new("f", 1, loc(0, 0), 0), 0).unwrap();
        let _ = r.get("f");
        let _ = r.get("g");
        r.absorb(&RegistryEntry::new("h", 1, loc(1, 1), 1)).unwrap();
        let (gets, puts, absorbs) = r.op_counts();
        assert_eq!((gets, puts, absorbs), (2, 1, 1));
    }
}
