//! Registry RPC protocol: the messages exchanged between clients, registry
//! instances and the synchronization agent.
//!
//! Both executors (the DES binding and the live threaded cluster) speak
//! this protocol. Messages know their wire size so the network model can
//! charge realistic transfer costs.

use crate::entry::RegistryEntry;
use crate::MetaError;
use geometa_cache::Key;

/// Fixed per-message framing overhead (headers, request ids) charged by the
/// network model on top of the payload.
pub const FRAME_OVERHEAD: usize = 48;

/// A request to a registry instance.
///
/// Key-addressed requests carry an interned [`Key`]: the client interns
/// (one allocation + one hash) and every server-side map probe reuses the
/// precomputed hash. Cloning a request for retry/fan-out is O(1) per key.
#[derive(Clone, Debug)]
pub enum RegistryRequest {
    /// Read one entry by key.
    Get { key: Key },
    /// Publish one entry (lookup + write semantics).
    Put { entry: RegistryEntry },
    /// Propagated entry from another instance (lazy update path). Absorbed
    /// with merge semantics; not counted as client load.
    Absorb { entries: Vec<RegistryEntry> },
    /// Remove one entry.
    Remove { key: Key },
    /// Sync agent: give me everything modified after `since`.
    DeltaPull { since: u64 },
}

impl RegistryRequest {
    /// Approximate size on the wire, bytes.
    pub fn wire_size(&self) -> u64 {
        let payload = match self {
            RegistryRequest::Get { key } => key.len(),
            RegistryRequest::Put { entry } => entry.encoded_len(),
            RegistryRequest::Absorb { entries } => {
                entries.iter().map(|e| e.encoded_len()).sum::<usize>()
            }
            RegistryRequest::Remove { key } => key.len(),
            RegistryRequest::DeltaPull { .. } => 8,
        };
        (FRAME_OVERHEAD + payload) as u64
    }

    /// Whether the request mutates registry state.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            RegistryRequest::Put { .. }
                | RegistryRequest::Absorb { .. }
                | RegistryRequest::Remove { .. }
        )
    }
}

/// A registry instance's response.
#[derive(Clone, Debug)]
pub enum RegistryResponse {
    /// Entry found.
    Found { entry: RegistryEntry },
    /// Write/absorb/remove acknowledged.
    Ack,
    /// Delta pull result.
    Delta { entries: Vec<RegistryEntry> },
    /// Operation failed.
    Error { error: MetaError },
}

impl RegistryResponse {
    /// Approximate size on the wire, bytes.
    pub fn wire_size(&self) -> u64 {
        let payload = match self {
            RegistryResponse::Found { entry } => entry.encoded_len(),
            RegistryResponse::Ack => 1,
            RegistryResponse::Delta { entries } => {
                entries.iter().map(|e| e.encoded_len()).sum::<usize>()
            }
            RegistryResponse::Error { .. } => 16,
        };
        (FRAME_OVERHEAD + payload) as u64
    }

    /// Unwrap into a found entry or an error.
    pub fn into_entry(self) -> Result<RegistryEntry, MetaError> {
        match self {
            RegistryResponse::Found { entry } => Ok(entry),
            RegistryResponse::Error { error } => Err(error),
            other => Err(MetaError::Codec(format!("expected Found, got {other:?}"))),
        }
    }

    /// Unwrap an acknowledgement.
    pub fn into_ack(self) -> Result<(), MetaError> {
        match self {
            RegistryResponse::Ack => Ok(()),
            RegistryResponse::Error { error } => Err(error),
            other => Err(MetaError::Codec(format!("expected Ack, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;
    use geometa_sim::topology::SiteId;

    fn entry(name: &str) -> RegistryEntry {
        RegistryEntry::new(
            name,
            10,
            FileLocation {
                site: SiteId(0),
                node: 0,
            },
            0,
        )
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = RegistryRequest::Get { key: "k".into() };
        let put = RegistryRequest::Put {
            entry: entry("a-much-longer-file-name"),
        };
        assert!(put.wire_size() > small.wire_size());
        let batch = RegistryRequest::Absorb {
            entries: (0..10).map(|i| entry(&format!("f{i}"))).collect(),
        };
        // One frame overhead amortized over ten entries: much bigger than a
        // single put, far smaller than ten framed puts.
        assert!(batch.wire_size() > put.wire_size());
        let single = RegistryRequest::Absorb {
            entries: vec![entry("f0")],
        };
        assert!(batch.wire_size() < single.wire_size() * 10);
    }

    #[test]
    fn write_classification() {
        assert!(RegistryRequest::Put { entry: entry("f") }.is_write());
        assert!(RegistryRequest::Remove { key: "f".into() }.is_write());
        assert!(RegistryRequest::Absorb { entries: vec![] }.is_write());
        assert!(!RegistryRequest::Get { key: "f".into() }.is_write());
        assert!(!RegistryRequest::DeltaPull { since: 0 }.is_write());
    }

    #[test]
    fn response_unwrapping() {
        let e = entry("f");
        assert_eq!(
            RegistryResponse::Found { entry: e.clone() }
                .into_entry()
                .unwrap(),
            e
        );
        assert!(RegistryResponse::Ack.into_ack().is_ok());
        assert_eq!(
            RegistryResponse::Error {
                error: MetaError::NotFound
            }
            .into_entry(),
            Err(MetaError::NotFound)
        );
        assert!(RegistryResponse::Ack.into_entry().is_err());
        assert!(RegistryResponse::Found { entry: e }.into_ack().is_err());
    }
}
