//! Registry RPC protocol: the messages exchanged between clients, registry
//! instances and the synchronization agent.
//!
//! Both executors (the DES binding and the live threaded cluster) speak
//! this protocol. Messages know their wire size so the network model can
//! charge realistic transfer costs.

use crate::entry::RegistryEntry;
use crate::MetaError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use geometa_cache::Key;
use geometa_sim::topology::SiteId;

/// Fixed per-message framing overhead (headers, request ids) charged by the
/// network model on top of the payload.
pub const FRAME_OVERHEAD: usize = 48;

/// Hard cap on the entry count of one `Absorb`/`Delta` message. Decoders
/// reject anything larger before allocating (codec totality on garbage).
pub const MAX_WIRE_ENTRIES: usize = 1 << 20;

/// Hard cap on one length-prefixed element (key or encoded entry).
const MAX_WIRE_ELEMENT: usize = 64 * 1024 * 1024;

/// A request to a registry instance.
///
/// Key-addressed requests carry an interned [`Key`]: the client interns
/// (one allocation + one hash) and every server-side map probe reuses the
/// precomputed hash. Cloning a request for retry/fan-out is O(1) per key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryRequest {
    /// Read one entry by key.
    Get { key: Key },
    /// Publish one entry (lookup + write semantics).
    Put { entry: RegistryEntry },
    /// Propagated entry from another instance (lazy update path). Absorbed
    /// with merge semantics; not counted as client load.
    Absorb { entries: Vec<RegistryEntry> },
    /// Remove one entry.
    Remove { key: Key },
    /// Sync agent: give me everything modified after `since`.
    DeltaPull { since: u64 },
    /// Ops: report the serving site's health (epoch, WAL position,
    /// connection count). Never epoch-checked — a client with a stale
    /// plan must still be able to ask where the cluster is.
    Status,
    /// Ops: change cluster membership. The serving site coordinates the
    /// rebalance transfer and epoch bump; `Ack` means *accepted*, not
    /// *finished* — poll [`RegistryRequest::Status`] for the epoch flip.
    Reconfigure {
        /// What to do with `site`.
        op: ReconfigureOp,
        /// The site joining, leaving or draining.
        site: SiteId,
    },
}

/// A membership change verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconfigureOp {
    /// Add the site to the member set (pulls ~1/n of the keys to it).
    Join,
    /// Evacuate the site's keys, then remove it from the member set.
    Leave,
    /// Copy the site's keys to their post-leave owners *without* changing
    /// membership — a warm-up that makes a later `Leave` near-instant.
    Drain,
}

/// One site's health snapshot, served for [`RegistryRequest::Status`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteStatus {
    /// The site that answered.
    pub site: SiteId,
    /// Current membership epoch.
    pub epoch: u64,
    /// Current member sites, sorted by id.
    pub members: Vec<SiteId>,
    /// Highest WAL sequence number assigned at this site (0 when the WAL
    /// is disabled or empty).
    pub wal_seq: u64,
    /// Entries currently held by this site's registry.
    pub entries: u64,
    /// Open server-side connections at this site (0 for transports that
    /// have no connections, e.g. in-process).
    pub conns: u32,
    /// Whether a rebalance transfer is currently in flight.
    pub rebalancing: bool,
    /// Entries moved by the most recently completed rebalance.
    pub last_moved: u64,
}

impl RegistryRequest {
    /// Approximate size on the wire, bytes.
    pub fn wire_size(&self) -> u64 {
        let payload = match self {
            RegistryRequest::Get { key } => key.len(),
            RegistryRequest::Put { entry } => entry.encoded_len(),
            RegistryRequest::Absorb { entries } => {
                entries.iter().map(|e| e.encoded_len()).sum::<usize>()
            }
            RegistryRequest::Remove { key } => key.len(),
            RegistryRequest::DeltaPull { .. } => 8,
            RegistryRequest::Status => 1,
            RegistryRequest::Reconfigure { .. } => 3,
        };
        (FRAME_OVERHEAD + payload) as u64
    }

    /// Whether the request mutates registry state.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            RegistryRequest::Put { .. }
                | RegistryRequest::Absorb { .. }
                | RegistryRequest::Remove { .. }
        )
    }
}

/// A registry instance's response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryResponse {
    /// Entry found.
    Found { entry: RegistryEntry },
    /// Write/absorb/remove acknowledged.
    Ack,
    /// Delta pull result.
    Delta { entries: Vec<RegistryEntry> },
    /// Health snapshot for a [`RegistryRequest::Status`].
    Status { status: SiteStatus },
    /// Operation failed.
    Error { error: MetaError },
}

impl RegistryResponse {
    /// Approximate size on the wire, bytes.
    pub fn wire_size(&self) -> u64 {
        let payload = match self {
            RegistryResponse::Found { entry } => entry.encoded_len(),
            RegistryResponse::Ack => 1,
            RegistryResponse::Delta { entries } => {
                entries.iter().map(|e| e.encoded_len()).sum::<usize>()
            }
            RegistryResponse::Status { status } => 40 + 2 * status.members.len(),
            RegistryResponse::Error { .. } => 16,
        };
        (FRAME_OVERHEAD + payload) as u64
    }

    /// Unwrap into a found entry or an error.
    pub fn into_entry(self) -> Result<RegistryEntry, MetaError> {
        match self {
            RegistryResponse::Found { entry } => Ok(entry),
            RegistryResponse::Error { error } => Err(error),
            other => Err(MetaError::Codec(format!("expected Found, got {other:?}"))),
        }
    }

    /// Unwrap an acknowledgement.
    pub fn into_ack(self) -> Result<(), MetaError> {
        match self {
            RegistryResponse::Ack => Ok(()),
            RegistryResponse::Error { error } => Err(error),
            other => Err(MetaError::Codec(format!("expected Ack, got {other:?}"))),
        }
    }

    /// Unwrap a status snapshot.
    pub fn into_status(self) -> Result<SiteStatus, MetaError> {
        match self {
            RegistryResponse::Status { status } => Ok(status),
            RegistryResponse::Error { error } => Err(error),
            other => Err(MetaError::Codec(format!("expected Status, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec
//
// The RPC types — not just entries — are serializable, so a transport can
// ship them over any byte stream. The format mirrors the entry codec:
// little-endian, length-prefixed, one leading tag byte per message. Every
// variable-length element (key, encoded entry, error text) carries its own
// u32 length prefix, so decoding slices the shared wire buffer and entry
// strings stay zero-copy (`MetaStr` views into the frame).
//
// Decoders are *total*: any byte sequence either decodes or returns
// `MetaError::Codec` — never a panic, never an unbounded allocation
// (counts and lengths are sanity-capped before any reservation).
// ---------------------------------------------------------------------------

mod tag {
    pub const REQ_GET: u8 = 1;
    pub const REQ_PUT: u8 = 2;
    pub const REQ_ABSORB: u8 = 3;
    pub const REQ_REMOVE: u8 = 4;
    pub const REQ_DELTA_PULL: u8 = 5;
    pub const REQ_STATUS: u8 = 6;
    pub const REQ_RECONFIGURE: u8 = 7;

    pub const RESP_FOUND: u8 = 1;
    pub const RESP_ACK: u8 = 2;
    pub const RESP_DELTA: u8 = 3;
    pub const RESP_ERROR: u8 = 4;
    pub const RESP_STATUS: u8 = 5;

    pub const ERR_NOT_FOUND: u8 = 1;
    pub const ERR_UNAVAILABLE: u8 = 2;
    pub const ERR_CONTENTION: u8 = 3;
    pub const ERR_CODEC: u8 = 4;
    pub const ERR_WRONG_EPOCH: u8 = 5;

    pub const OP_JOIN: u8 = 1;
    pub const OP_LEAVE: u8 = 2;
    pub const OP_DRAIN: u8 = 3;
}

fn put_prefixed<B: BufMut>(buf: &mut B, bytes: &[u8]) {
    buf.put_u32_le(bytes.len() as u32);
    buf.put_slice(bytes);
}

fn get_prefixed(buf: &mut Bytes) -> Result<Bytes, MetaError> {
    if buf.remaining() < 4 {
        return Err(MetaError::Codec("truncated length prefix".into()));
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_WIRE_ELEMENT {
        return Err(MetaError::Codec(format!(
            "implausible element length {len}"
        )));
    }
    if buf.remaining() < len {
        return Err(MetaError::Codec("truncated element body".into()));
    }
    Ok(buf.split_to(len))
}

fn put_key<B: BufMut>(buf: &mut B, key: &Key) {
    put_prefixed(buf, key.as_str().as_bytes());
}

fn get_key(buf: &mut Bytes) -> Result<Key, MetaError> {
    let raw = get_prefixed(buf)?;
    let s = std::str::from_utf8(&raw).map_err(|e| MetaError::Codec(e.to_string()))?;
    Ok(Key::new(s))
}

fn put_entries<B: BufMut>(buf: &mut B, entries: &[RegistryEntry]) {
    buf.put_u32_le(entries.len() as u32);
    for e in entries {
        buf.put_u32_le(e.encoded_len() as u32);
        buf.put_slice(&e.to_bytes());
    }
}

fn get_entries(buf: &mut Bytes) -> Result<Vec<RegistryEntry>, MetaError> {
    if buf.remaining() < 4 {
        return Err(MetaError::Codec("truncated entry count".into()));
    }
    let n = buf.get_u32_le() as usize;
    if n > MAX_WIRE_ENTRIES {
        return Err(MetaError::Codec(format!("implausible entry count {n}")));
    }
    // Each entry needs at least its 4-byte prefix: reject before reserving.
    if buf.remaining() < n * 4 {
        return Err(MetaError::Codec("truncated entry batch".into()));
    }
    // Cap the up-front reservation: a garbage count that passed the
    // prefix check could otherwise reserve ~100 bytes per claimed entry
    // before the first decode fails. Honest batches grow past 1024
    // entries through ordinary doubling.
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(RegistryEntry::from_bytes(get_prefixed(buf)?)?);
    }
    Ok(out)
}

fn entries_encoded_len(entries: &[RegistryEntry]) -> usize {
    4 + entries.iter().map(|e| 4 + e.encoded_len()).sum::<usize>()
}

fn put_sites<B: BufMut>(buf: &mut B, sites: &[SiteId]) {
    buf.put_u16_le(sites.len() as u16);
    for s in sites {
        buf.put_u16_le(s.0);
    }
}

fn get_sites(buf: &mut Bytes) -> Result<Vec<SiteId>, MetaError> {
    if buf.remaining() < 2 {
        return Err(MetaError::Codec("truncated site count".into()));
    }
    let n = buf.get_u16_le() as usize;
    if buf.remaining() < n * 2 {
        return Err(MetaError::Codec("truncated site list".into()));
    }
    Ok((0..n).map(|_| SiteId(buf.get_u16_le())).collect())
}

/// Borrowed fast-path view of an encoded [`RegistryRequest::Get`]: when
/// `wire` is exactly a well-formed `Get`, returns the key as a `&str`
/// view into `wire` — no interning, no allocation. Anything else
/// (other tags, truncation, bad UTF-8) returns `None` and the caller
/// falls back to the total decoder, which produces the proper error.
// geometa-hot
pub fn decode_get_key(wire: &[u8]) -> Option<&str> {
    if wire.len() < 5 || wire[0] != tag::REQ_GET {
        return None;
    }
    let len = u32::from_le_bytes([wire[1], wire[2], wire[3], wire[4]]) as usize;
    if wire.len() != 5 + len {
        return None;
    }
    std::str::from_utf8(&wire[5..]).ok()
}

/// Borrowed fast-path decode for the fixed-shape responses (`Ack` and
/// the payload-free errors) straight from a wire slice — no allocation.
/// Returns `None` for anything carrying heap data (`Found`, `Delta`,
/// `Status`, codec errors); the caller falls back to
/// [`RegistryResponse::decode`] after materializing the frame.
// geometa-hot
pub fn decode_fixed_response(wire: &[u8]) -> Option<RegistryResponse> {
    let error = match *wire {
        [tag::RESP_ACK] => return Some(RegistryResponse::Ack),
        [tag::RESP_ERROR, tag::ERR_NOT_FOUND] => MetaError::NotFound,
        [tag::RESP_ERROR, tag::ERR_UNAVAILABLE] => MetaError::Unavailable,
        [tag::RESP_ERROR, tag::ERR_CONTENTION] => MetaError::Contention,
        [tag::RESP_ERROR, tag::ERR_WRONG_EPOCH, a, b, c, d, e, f, g, h] => MetaError::WrongEpoch {
            epoch: u64::from_le_bytes([a, b, c, d, e, f, g, h]),
        },
        _ => return None,
    };
    Some(RegistryResponse::Error { error })
}

fn finish(buf: Bytes) -> Result<(), MetaError> {
    if buf.has_remaining() {
        Err(MetaError::Codec(format!(
            "{} trailing bytes after message",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

impl RegistryRequest {
    /// Serialize for a byte-stream transport. `encoded_len` is exact.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Serialize by appending to an existing buffer — the in-place variant
    /// of [`RegistryRequest::encode`], byte-identical output. Appends
    /// exactly [`RegistryRequest::encoded_len`] bytes; with the buffer
    /// pre-reserved this performs no allocation (the writer owns the
    /// buffer lifecycle, so steady-state encode is alloc-free).
    // geometa-hot
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        match self {
            RegistryRequest::Get { key } => {
                buf.put_u8(tag::REQ_GET);
                put_key(buf, key);
            }
            RegistryRequest::Put { entry } => {
                buf.put_u8(tag::REQ_PUT);
                buf.put_u32_le(entry.encoded_len() as u32);
                // geometa-lint: allow(hot-alloc) entry bodies own heap strings; Put is not on the alloc-gated echo path
                buf.put_slice(&entry.to_bytes());
            }
            RegistryRequest::Absorb { entries } => {
                buf.put_u8(tag::REQ_ABSORB);
                put_entries(buf, entries);
            }
            RegistryRequest::Remove { key } => {
                buf.put_u8(tag::REQ_REMOVE);
                put_key(buf, key);
            }
            RegistryRequest::DeltaPull { since } => {
                buf.put_u8(tag::REQ_DELTA_PULL);
                buf.put_u64_le(*since);
            }
            RegistryRequest::Status => buf.put_u8(tag::REQ_STATUS),
            RegistryRequest::Reconfigure { op, site } => {
                buf.put_u8(tag::REQ_RECONFIGURE);
                buf.put_u8(match op {
                    ReconfigureOp::Join => tag::OP_JOIN,
                    ReconfigureOp::Leave => tag::OP_LEAVE,
                    ReconfigureOp::Drain => tag::OP_DRAIN,
                });
                buf.put_u16_le(site.0);
            }
        }
    }

    /// Deserialize one request. Total: errors on garbage, truncation, and
    /// trailing bytes; entry strings are zero-copy views into `buf`.
    pub fn decode(mut buf: Bytes) -> Result<RegistryRequest, MetaError> {
        if !buf.has_remaining() {
            return Err(MetaError::Codec("empty request".into()));
        }
        let req = match buf.get_u8() {
            tag::REQ_GET => RegistryRequest::Get {
                key: get_key(&mut buf)?,
            },
            tag::REQ_PUT => RegistryRequest::Put {
                entry: RegistryEntry::from_bytes(get_prefixed(&mut buf)?)?,
            },
            tag::REQ_ABSORB => RegistryRequest::Absorb {
                entries: get_entries(&mut buf)?,
            },
            tag::REQ_REMOVE => RegistryRequest::Remove {
                key: get_key(&mut buf)?,
            },
            tag::REQ_DELTA_PULL => {
                if buf.remaining() < 8 {
                    return Err(MetaError::Codec("truncated delta-pull watermark".into()));
                }
                RegistryRequest::DeltaPull {
                    since: buf.get_u64_le(),
                }
            }
            tag::REQ_STATUS => RegistryRequest::Status,
            tag::REQ_RECONFIGURE => {
                if buf.remaining() < 3 {
                    return Err(MetaError::Codec("truncated reconfigure".into()));
                }
                let op = match buf.get_u8() {
                    tag::OP_JOIN => ReconfigureOp::Join,
                    tag::OP_LEAVE => ReconfigureOp::Leave,
                    tag::OP_DRAIN => ReconfigureOp::Drain,
                    other => return Err(MetaError::Codec(format!("bad reconfigure op {other}"))),
                };
                RegistryRequest::Reconfigure {
                    op,
                    site: SiteId(buf.get_u16_le()),
                }
            }
            other => return Err(MetaError::Codec(format!("bad request tag {other}"))),
        };
        finish(buf)?;
        Ok(req)
    }

    /// Exact serialized size in bytes (`encode().len()`), used for frame
    /// accounting by the network transports.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            RegistryRequest::Get { key } | RegistryRequest::Remove { key } => 4 + key.len(),
            RegistryRequest::Put { entry } => 4 + entry.encoded_len(),
            RegistryRequest::Absorb { entries } => entries_encoded_len(entries),
            RegistryRequest::DeltaPull { .. } => 8,
            RegistryRequest::Status => 0,
            RegistryRequest::Reconfigure { .. } => 3,
        }
    }
}

impl RegistryResponse {
    /// Serialize for a byte-stream transport. `encoded_len` is exact.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Serialize by appending to an existing buffer — the in-place variant
    /// of [`RegistryResponse::encode`], byte-identical output. The server
    /// reactor uses this to encode responses directly into a connection's
    /// out-buffer behind the frame header, skipping the intermediate
    /// `Bytes` and its copy.
    // geometa-hot
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        match self {
            RegistryResponse::Found { entry } => {
                buf.put_u8(tag::RESP_FOUND);
                buf.put_u32_le(entry.encoded_len() as u32);
                // geometa-lint: allow(hot-alloc) entry bodies own heap strings; Found is the documented get-hit cost
                buf.put_slice(&entry.to_bytes());
            }
            RegistryResponse::Ack => buf.put_u8(tag::RESP_ACK),
            RegistryResponse::Delta { entries } => {
                buf.put_u8(tag::RESP_DELTA);
                put_entries(buf, entries);
            }
            RegistryResponse::Status { status } => {
                buf.put_u8(tag::RESP_STATUS);
                buf.put_u16_le(status.site.0);
                buf.put_u64_le(status.epoch);
                put_sites(buf, &status.members);
                buf.put_u64_le(status.wal_seq);
                buf.put_u64_le(status.entries);
                buf.put_u32_le(status.conns);
                buf.put_u8(status.rebalancing as u8);
                buf.put_u64_le(status.last_moved);
            }
            RegistryResponse::Error { error } => {
                buf.put_u8(tag::RESP_ERROR);
                match error {
                    MetaError::NotFound => buf.put_u8(tag::ERR_NOT_FOUND),
                    MetaError::Unavailable => buf.put_u8(tag::ERR_UNAVAILABLE),
                    MetaError::Contention => buf.put_u8(tag::ERR_CONTENTION),
                    MetaError::WrongEpoch { epoch } => {
                        buf.put_u8(tag::ERR_WRONG_EPOCH);
                        buf.put_u64_le(*epoch);
                    }
                    MetaError::Codec(msg) => {
                        buf.put_u8(tag::ERR_CODEC);
                        put_prefixed(buf, msg.as_bytes());
                    }
                }
            }
        }
    }

    /// Deserialize one response. Total, like [`RegistryRequest::decode`].
    pub fn decode(mut buf: Bytes) -> Result<RegistryResponse, MetaError> {
        if !buf.has_remaining() {
            return Err(MetaError::Codec("empty response".into()));
        }
        let resp = match buf.get_u8() {
            tag::RESP_FOUND => RegistryResponse::Found {
                entry: RegistryEntry::from_bytes(get_prefixed(&mut buf)?)?,
            },
            tag::RESP_ACK => RegistryResponse::Ack,
            tag::RESP_DELTA => RegistryResponse::Delta {
                entries: get_entries(&mut buf)?,
            },
            tag::RESP_STATUS => {
                if buf.remaining() < 10 {
                    return Err(MetaError::Codec("truncated status head".into()));
                }
                let site = SiteId(buf.get_u16_le());
                let epoch = buf.get_u64_le();
                let members = get_sites(&mut buf)?;
                if buf.remaining() < 8 + 8 + 4 + 1 + 8 {
                    return Err(MetaError::Codec("truncated status body".into()));
                }
                RegistryResponse::Status {
                    status: SiteStatus {
                        site,
                        epoch,
                        members,
                        wal_seq: buf.get_u64_le(),
                        entries: buf.get_u64_le(),
                        conns: buf.get_u32_le(),
                        rebalancing: buf.get_u8() != 0,
                        last_moved: buf.get_u64_le(),
                    },
                }
            }
            tag::RESP_ERROR => {
                if !buf.has_remaining() {
                    return Err(MetaError::Codec("truncated error tag".into()));
                }
                let error = match buf.get_u8() {
                    tag::ERR_NOT_FOUND => MetaError::NotFound,
                    tag::ERR_UNAVAILABLE => MetaError::Unavailable,
                    tag::ERR_CONTENTION => MetaError::Contention,
                    tag::ERR_WRONG_EPOCH => {
                        if buf.remaining() < 8 {
                            return Err(MetaError::Codec("truncated epoch".into()));
                        }
                        MetaError::WrongEpoch {
                            epoch: buf.get_u64_le(),
                        }
                    }
                    tag::ERR_CODEC => {
                        let raw = get_prefixed(&mut buf)?;
                        let msg = std::str::from_utf8(&raw)
                            .map_err(|e| MetaError::Codec(e.to_string()))?;
                        MetaError::Codec(msg.to_string())
                    }
                    other => return Err(MetaError::Codec(format!("bad error tag {other}"))),
                };
                RegistryResponse::Error { error }
            }
            other => return Err(MetaError::Codec(format!("bad response tag {other}"))),
        };
        finish(buf)?;
        Ok(resp)
    }

    /// Exact serialized size in bytes (`encode().len()`).
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            RegistryResponse::Found { entry } => 4 + entry.encoded_len(),
            RegistryResponse::Ack => 0,
            RegistryResponse::Delta { entries } => entries_encoded_len(entries),
            RegistryResponse::Status { status } => {
                2 + 8 + 2 + 2 * status.members.len() + 8 + 8 + 4 + 1 + 8
            }
            RegistryResponse::Error { error } => match error {
                MetaError::Codec(msg) => 1 + 4 + msg.len(),
                MetaError::WrongEpoch { .. } => 1 + 8,
                _ => 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;
    use geometa_sim::topology::SiteId;

    fn entry(name: &str) -> RegistryEntry {
        RegistryEntry::new(
            name,
            10,
            FileLocation {
                site: SiteId(0),
                node: 0,
            },
            0,
        )
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = RegistryRequest::Get { key: "k".into() };
        let put = RegistryRequest::Put {
            entry: entry("a-much-longer-file-name"),
        };
        assert!(put.wire_size() > small.wire_size());
        let batch = RegistryRequest::Absorb {
            entries: (0..10).map(|i| entry(&format!("f{i}"))).collect(),
        };
        // One frame overhead amortized over ten entries: much bigger than a
        // single put, far smaller than ten framed puts.
        assert!(batch.wire_size() > put.wire_size());
        let single = RegistryRequest::Absorb {
            entries: vec![entry("f0")],
        };
        assert!(batch.wire_size() < single.wire_size() * 10);
    }

    #[test]
    fn write_classification() {
        assert!(RegistryRequest::Put { entry: entry("f") }.is_write());
        assert!(RegistryRequest::Remove { key: "f".into() }.is_write());
        assert!(RegistryRequest::Absorb { entries: vec![] }.is_write());
        assert!(!RegistryRequest::Get { key: "f".into() }.is_write());
        assert!(!RegistryRequest::DeltaPull { since: 0 }.is_write());
    }

    #[test]
    fn response_unwrapping() {
        let e = entry("f");
        assert_eq!(
            RegistryResponse::Found { entry: e.clone() }
                .into_entry()
                .unwrap(),
            e
        );
        assert!(RegistryResponse::Ack.into_ack().is_ok());
        assert_eq!(
            RegistryResponse::Error {
                error: MetaError::NotFound
            }
            .into_entry(),
            Err(MetaError::NotFound)
        );
        assert!(RegistryResponse::Ack.into_entry().is_err());
        assert!(RegistryResponse::Found { entry: e }.into_ack().is_err());
    }

    fn request_shapes() -> Vec<RegistryRequest> {
        vec![
            RegistryRequest::Get { key: "a/b".into() },
            RegistryRequest::Put { entry: entry("f") },
            RegistryRequest::Absorb { entries: vec![] },
            RegistryRequest::Absorb {
                entries: (0..3).map(|i| entry(&format!("e{i}"))).collect(),
            },
            RegistryRequest::Remove { key: "gone".into() },
            RegistryRequest::DeltaPull { since: u64::MAX },
            RegistryRequest::Status,
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Join,
                site: SiteId(4),
            },
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Leave,
                site: SiteId(1),
            },
            RegistryRequest::Reconfigure {
                op: ReconfigureOp::Drain,
                site: SiteId(0),
            },
        ]
    }

    fn response_shapes() -> Vec<RegistryResponse> {
        vec![
            RegistryResponse::Found { entry: entry("f") },
            RegistryResponse::Ack,
            RegistryResponse::Delta { entries: vec![] },
            RegistryResponse::Delta {
                entries: (0..3).map(|i| entry(&format!("d{i}"))).collect(),
            },
            RegistryResponse::Error {
                error: MetaError::NotFound,
            },
            RegistryResponse::Error {
                error: MetaError::Unavailable,
            },
            RegistryResponse::Error {
                error: MetaError::Contention,
            },
            RegistryResponse::Error {
                error: MetaError::WrongEpoch { epoch: 7 },
            },
            RegistryResponse::Error {
                error: MetaError::Codec("bad frame".into()),
            },
            RegistryResponse::Status {
                status: SiteStatus {
                    site: SiteId(2),
                    epoch: 9,
                    members: vec![SiteId(0), SiteId(2), SiteId(3)],
                    wal_seq: 1234,
                    entries: 56,
                    conns: 3,
                    rebalancing: true,
                    last_moved: 78,
                },
            },
            RegistryResponse::Status {
                status: SiteStatus {
                    site: SiteId(0),
                    epoch: 0,
                    members: vec![],
                    wal_seq: 0,
                    entries: 0,
                    conns: 0,
                    rebalancing: false,
                    last_moved: 0,
                },
            },
        ]
    }

    #[test]
    fn wire_roundtrip_every_variant() {
        for req in request_shapes() {
            let wire = req.encode();
            assert_eq!(wire.len(), req.encoded_len(), "{req:?}");
            assert_eq!(RegistryRequest::decode(wire).unwrap(), req);
        }
        for resp in response_shapes() {
            let wire = resp.encode();
            assert_eq!(wire.len(), resp.encoded_len(), "{resp:?}");
            assert_eq!(RegistryResponse::decode(wire).unwrap(), resp);
        }
    }

    #[test]
    fn encode_into_matches_encode_for_every_shape() {
        let mut buf = bytes::BytesMut::new();
        for req in request_shapes() {
            buf = bytes::BytesMut::new();
            req.encode_into(&mut buf);
            assert_eq!(&buf[..], &req.encode()[..], "{req:?}");
            let mut vec_buf: Vec<u8> = Vec::new();
            req.encode_into(&mut vec_buf);
            assert_eq!(&vec_buf[..], &req.encode()[..], "{req:?} via Vec<u8>");
        }
        for resp in response_shapes() {
            buf = bytes::BytesMut::new();
            resp.encode_into(&mut buf);
            assert_eq!(&buf[..], &resp.encode()[..], "{resp:?}");
        }
        let _ = buf;
    }

    #[test]
    fn borrowed_get_key_fast_path() {
        let wire = RegistryRequest::Get {
            key: "dir/file.fits".into(),
        }
        .encode();
        assert_eq!(decode_get_key(&wire), Some("dir/file.fits"));
        // Everything that is not exactly a well-formed Get falls through.
        assert_eq!(decode_get_key(&RegistryRequest::Status.encode()), None);
        assert_eq!(decode_get_key(&wire[..wire.len() - 1]), None);
        assert_eq!(decode_get_key(b"\x01\xff\xff\xff\xff"), None);
        assert_eq!(decode_get_key(b"\x01\x02\x00\x00\x00\xff\xfe"), None);
    }

    #[test]
    fn borrowed_fixed_response_fast_path() {
        for resp in response_shapes() {
            let wire = resp.encode();
            match decode_fixed_response(&wire) {
                Some(fast) => assert_eq!(fast, resp, "fast path must agree"),
                None => assert!(
                    matches!(
                        resp,
                        RegistryResponse::Found { .. }
                            | RegistryResponse::Delta { .. }
                            | RegistryResponse::Status { .. }
                            | RegistryResponse::Error {
                                error: MetaError::Codec(_)
                            }
                    ),
                    "only heap-carrying responses may fall back: {resp:?}"
                ),
            }
        }
        // Ack and the simple errors must take the fast path.
        assert_eq!(
            decode_fixed_response(&RegistryResponse::Ack.encode()),
            Some(RegistryResponse::Ack)
        );
        assert!(decode_fixed_response(b"").is_none());
    }

    #[test]
    fn wire_decode_rejects_trailing_bytes() {
        let mut wire = bytes::BytesMut::new();
        wire.extend_from_slice(&RegistryRequest::DeltaPull { since: 3 }.encode());
        wire.extend_from_slice(b"x");
        assert!(RegistryRequest::decode(wire.freeze()).is_err());
        let mut wire = bytes::BytesMut::new();
        wire.extend_from_slice(&RegistryResponse::Ack.encode());
        wire.extend_from_slice(b"x");
        assert!(RegistryResponse::decode(wire.freeze()).is_err());
    }

    #[test]
    fn wire_decode_is_zero_copy_for_entry_strings() {
        let wire = RegistryRequest::Put {
            entry: entry("montage/tile_0042.fits"),
        }
        .encode();
        let range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        match RegistryRequest::decode(wire.clone()).unwrap() {
            RegistryRequest::Put { entry } => {
                assert!(range.contains(&(entry.name.as_str().as_ptr() as usize)));
            }
            other => panic!("decoded wrong variant {other:?}"),
        }
    }

    #[test]
    fn wire_decode_rejects_implausible_counts() {
        // Absorb claiming 2^30 entries with a 10-byte body must be rejected
        // before any allocation.
        let mut raw = bytes::BytesMut::new();
        raw.put_u8(3); // REQ_ABSORB
        raw.put_u32_le(1 << 30);
        raw.extend_from_slice(&[0u8; 10]);
        assert!(RegistryRequest::decode(raw.freeze()).is_err());
    }
}
