//! Eventual-consistency machinery: entry merging and inconsistency-window
//! measurement.
//!
//! The middleware favours availability: writes complete locally and
//! propagate lazily (paper §III-D). When the same key is written at two
//! sites, replicas must still converge — we merge entries with a
//! deterministic, commutative, associative rule (location-set union plus
//! last-writer-wins on scalar fields), so the final state is independent of
//! delivery order.
//!
//! [`InconsistencyTracker`] measures the paper's "inconsistent window": the
//! lag between a write completing at its origin and becoming visible at
//! every other site.

use crate::entry::RegistryEntry;
use geometa_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Merge two versions of the same entry into their least upper bound.
///
/// Every field is joined independently, so the merge is a true join
/// semilattice — commutative, associative, idempotent (verified by
/// property tests) — which is what lets replicas absorb updates in any
/// delivery order and still converge:
///
/// * locations: set union (a file gains replicas, never silently loses
///   them);
/// * `created_at`: the earliest creation, preserving provenance;
/// * size / producer: per-field maximum. Workflow files are write-once
///   (paper §II-A), so two writes of one key normally only differ in
///   their location; a genuine scalar conflict is exceptional and any
///   deterministic order-independent rule is acceptable — max is the
///   simplest one that stays a semilattice.
pub fn merge_entries(existing: &RegistryEntry, incoming: &RegistryEntry) -> RegistryEntry {
    debug_assert_eq!(existing.name, incoming.name, "merging different keys");
    let mut merged = RegistryEntry {
        name: existing.name.clone(),
        size: existing.size.max(incoming.size),
        locations: existing.locations.clone(),
        producer: existing.producer.clone().max(incoming.producer.clone()),
        created_at: existing.created_at.min(incoming.created_at),
    };
    for loc in &incoming.locations {
        merged.add_location(*loc);
    }
    merged.locations.sort();
    merged
}

/// Tracks how long writes take to become visible everywhere.
#[derive(Debug, Default)]
pub struct InconsistencyTracker {
    /// key -> (write completion time at origin, sites still missing it).
    pending: HashMap<String, (SimTime, usize)>,
    windows: Vec<SimDuration>,
}

impl InconsistencyTracker {
    /// New tracker.
    pub fn new() -> InconsistencyTracker {
        InconsistencyTracker::default()
    }

    /// A write of `key` completed at its origin at `at`; it must still
    /// reach `remote_sites` other sites.
    pub fn write_completed(&mut self, key: &str, at: SimTime, remote_sites: usize) {
        if remote_sites == 0 {
            self.windows.push(SimDuration::ZERO);
            return;
        }
        self.pending.insert(key.to_string(), (at, remote_sites));
    }

    /// The entry for `key` became visible at one more remote site at `at`.
    /// When the last site is covered, the window is recorded.
    pub fn propagated(&mut self, key: &str, at: SimTime) {
        if let Some((start, remaining)) = self.pending.get_mut(key) {
            *remaining -= 1;
            if *remaining == 0 {
                let start = *start;
                self.pending.remove(key);
                self.windows.push(at.since(start));
            }
        }
    }

    /// Number of fully propagated writes.
    pub fn closed(&self) -> usize {
        self.windows.len()
    }

    /// Number of writes still propagating.
    pub fn open(&self) -> usize {
        self.pending.len()
    }

    /// Mean inconsistency window over closed writes.
    pub fn mean_window(&self) -> SimDuration {
        if self.windows.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = self.windows.iter().map(|w| w.as_micros()).sum();
        SimDuration::from_micros(sum / self.windows.len() as u64)
    }

    /// Maximum inconsistency window observed.
    pub fn max_window(&self) -> SimDuration {
        self.windows
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;
    use geometa_sim::topology::SiteId;

    fn entry(name: &str, site: u16, node: u32, at: u64) -> RegistryEntry {
        RegistryEntry::new(
            name,
            100,
            FileLocation {
                site: SiteId(site),
                node,
            },
            at,
        )
    }

    #[test]
    fn merge_unions_locations() {
        let a = entry("f", 0, 1, 10);
        let b = entry("f", 2, 5, 20);
        let m = merge_entries(&a, &b);
        assert_eq!(m.locations.len(), 2);
        assert!(m.available_at(SiteId(0)));
        assert!(m.available_at(SiteId(2)));
        assert_eq!(m.created_at, 10, "earliest creation wins");
    }

    #[test]
    fn merge_is_commutative() {
        let a = entry("f", 0, 1, 10).with_producer("t1");
        let b = entry("f", 2, 5, 20).with_producer("t2");
        let ab = merge_entries(&a, &b);
        let ba = merge_entries(&b, &a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative() {
        let a = entry("f", 0, 1, 10);
        let b = entry("f", 1, 2, 20);
        let c = entry("f", 2, 3, 30);
        let left = merge_entries(&merge_entries(&a, &b), &c);
        let right = merge_entries(&a, &merge_entries(&b, &c));
        assert_eq!(left, right);
    }

    #[test]
    fn merge_is_idempotent() {
        let a = entry("f", 0, 1, 10).with_producer("t");
        let m = merge_entries(&a, &a);
        assert_eq!(m, {
            let mut x = a.clone();
            x.locations.sort();
            x
        });
    }

    #[test]
    fn newer_write_wins_scalars() {
        let mut old = entry("f", 0, 1, 10);
        old.size = 100;
        let mut new = entry("f", 1, 2, 20);
        new.size = 999;
        let m = merge_entries(&old, &new);
        assert_eq!(m.size, 999);
        let m2 = merge_entries(&new, &old);
        assert_eq!(m2.size, 999);
    }

    #[test]
    fn tracker_measures_windows() {
        let mut t = InconsistencyTracker::new();
        t.write_completed("k", SimTime(1_000_000), 2);
        assert_eq!(t.open(), 1);
        t.propagated("k", SimTime(1_500_000));
        assert_eq!(t.closed(), 0, "still one site missing");
        t.propagated("k", SimTime(2_000_000));
        assert_eq!(t.closed(), 1);
        assert_eq!(t.open(), 0);
        assert_eq!(t.mean_window(), SimDuration::from_secs(1));
        assert_eq!(t.max_window(), SimDuration::from_secs(1));
    }

    #[test]
    fn tracker_zero_remote_sites_closes_immediately() {
        let mut t = InconsistencyTracker::new();
        t.write_completed("k", SimTime(5), 0);
        assert_eq!(t.closed(), 1);
        assert_eq!(t.mean_window(), SimDuration::ZERO);
    }

    #[test]
    fn tracker_ignores_unknown_keys() {
        let mut t = InconsistencyTracker::new();
        t.propagated("ghost", SimTime(1));
        assert_eq!(t.closed(), 0);
    }
}
