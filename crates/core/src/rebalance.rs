//! Elastic rebalancing: metadata migration when sites join or leave.
//!
//! The paper's related-work section (§VIII) faults classic schemes for
//! their behaviour under elasticity — "a high volatility of metadata
//! servers ... is the norm in the nowadays elastic clouds" — and answers
//! with consistent hashing plus lazy, eventually consistent updates. This
//! module completes that story: given the placement *before* and *after* a
//! membership change, [`plan_rebalance`] lists exactly the entries whose
//! owner moved (≈ 1/n of them under a [`ConsistentRing`]), and
//! [`apply_rebalance`] copies them to their new owners using the same
//! idempotent absorb path as every other propagation.
//!
//! [`ConsistentRing`]: crate::hash::ConsistentRing

use crate::entry::RegistryEntry;
use crate::hash::SitePlacer;
use crate::registry::RegistryInstance;
use crate::MetaError;
use geometa_sim::topology::SiteId;
use std::collections::HashMap;
use std::sync::Arc;

/// One required metadata movement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Move {
    /// The entry to copy.
    pub entry: RegistryEntry,
    /// Site that owned it under the old placement.
    pub from: SiteId,
    /// Site that owns it under the new placement.
    pub to: SiteId,
}

/// Compute the moves a membership change requires: every entry whose hash
/// owner changed between `before` and `after`.
///
/// Only entries stored at their *owner* site are considered — local
/// replicas (the DR strategy's) stay where they are; they were placed by
/// origin, not by hash.
pub fn plan_rebalance(
    before: &dyn SitePlacer,
    after: &dyn SitePlacer,
    registries: &HashMap<SiteId, Arc<RegistryInstance>>,
) -> Vec<Move> {
    let mut moves = Vec::new();
    // Iterate sites in id order: the move plan's order is observable (it
    // drives transfer scheduling), so it must not depend on hash order.
    let mut sites: Vec<(&SiteId, &Arc<RegistryInstance>)> = registries.iter().collect();
    sites.sort_by_key(|(site, _)| **site);
    for (&site, registry) in sites {
        for entry in registry.all_entries() {
            let old_owner = before.owner(&entry.name);
            if old_owner != site {
                continue; // a local replica, not the authoritative copy
            }
            let new_owner = after.owner(&entry.name);
            if new_owner != site {
                moves.push(Move {
                    entry,
                    from: site,
                    to: new_owner,
                });
            }
        }
    }
    // Deterministic order (HashMap iteration is not).
    moves.sort_by(|a, b| a.entry.name.cmp(&b.entry.name));
    moves
}

/// Apply a rebalance plan: absorb every moved entry at its new owner.
///
/// Copies are absorbed (idempotent, origin-timestamped), so a crashed and
/// re-run rebalance converges to the same state. The old copies are left
/// in place — under eventual consistency a stale extra replica is
/// harmless and avoids a delete/lookup race; callers that want space back
/// can remove them once the new placement is live.
pub fn apply_rebalance(
    moves: &[Move],
    registries: &HashMap<SiteId, Arc<RegistryInstance>>,
) -> Result<usize, MetaError> {
    for m in moves {
        let target = registries.get(&m.to).ok_or(MetaError::Unavailable)?;
        target.absorb(&m.entry)?;
    }
    Ok(moves.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::FileLocation;
    use crate::hash::ConsistentRing;

    fn setup(
        n_sites: u16,
        entries: usize,
    ) -> (ConsistentRing, HashMap<SiteId, Arc<RegistryInstance>>) {
        let sites: Vec<SiteId> = (0..n_sites).map(SiteId).collect();
        let ring = ConsistentRing::new(sites.clone(), 64);
        let registries: HashMap<SiteId, Arc<RegistryInstance>> = sites
            .iter()
            .map(|&s| (s, Arc::new(RegistryInstance::new(s, 8))))
            .collect();
        for i in 0..entries {
            let name = format!("f{i}");
            let owner = ring.owner(&name);
            registries[&owner]
                .put(
                    &RegistryEntry::new(
                        &name,
                        1,
                        FileLocation {
                            site: owner,
                            node: 0,
                        },
                        i as u64 + 1,
                    ),
                    i as u64 + 1,
                )
                .unwrap();
        }
        (ring, registries)
    }

    #[test]
    fn adding_a_site_moves_about_one_fifth() {
        let (ring, registries) = setup(4, 2_000);
        let mut grown = ring.clone();
        grown.add_site(SiteId(4));
        let moves = plan_rebalance(&ring, &grown, &registries);
        let frac = moves.len() as f64 / 2_000.0;
        assert!((0.10..0.32).contains(&frac), "moved fraction {frac}");
        for m in &moves {
            assert_eq!(m.to, SiteId(4), "additions only pull keys to the new site");
        }
    }

    #[test]
    fn applied_rebalance_makes_new_owners_authoritative() {
        let (ring, mut registries) = setup(4, 500);
        let mut grown = ring.clone();
        grown.add_site(SiteId(4));
        registries.insert(SiteId(4), Arc::new(RegistryInstance::new(SiteId(4), 8)));
        let moves = plan_rebalance(&ring, &grown, &registries);
        let n = apply_rebalance(&moves, &registries).unwrap();
        assert_eq!(n, moves.len());
        // Every key is now resolvable at its NEW owner.
        for i in 0..500 {
            let name = format!("f{i}");
            let owner = grown.owner(&name);
            assert!(
                registries[&owner].get(&name).is_ok(),
                "{name} missing at new owner {owner}"
            );
        }
    }

    #[test]
    fn removing_a_site_evacuates_exactly_its_keys() {
        let (ring, registries) = setup(4, 1_000);
        let mut shrunk = ring.clone();
        shrunk.remove_site(SiteId(2));
        let moves = plan_rebalance(&ring, &shrunk, &registries);
        for m in &moves {
            assert_eq!(m.from, SiteId(2), "only the removed site's keys move");
            assert_ne!(m.to, SiteId(2));
        }
        assert_eq!(moves.len(), registries[&SiteId(2)].len());
    }

    #[test]
    fn rebalance_is_idempotent() {
        let (ring, mut registries) = setup(4, 300);
        let mut grown = ring.clone();
        grown.add_site(SiteId(4));
        registries.insert(SiteId(4), Arc::new(RegistryInstance::new(SiteId(4), 8)));
        let moves = plan_rebalance(&ring, &grown, &registries);
        apply_rebalance(&moves, &registries).unwrap();
        let before = registries[&SiteId(4)].len();
        apply_rebalance(&moves, &registries).unwrap(); // re-run (crash recovery)
        assert_eq!(registries[&SiteId(4)].len(), before, "absorb is idempotent");
    }

    #[test]
    fn no_membership_change_means_no_moves() {
        let (ring, registries) = setup(4, 400);
        let moves = plan_rebalance(&ring, &ring.clone(), &registries);
        assert!(moves.is_empty());
    }

    #[test]
    fn missing_target_registry_errors() {
        let (ring, registries) = setup(4, 100);
        let mut grown = ring.clone();
        grown.add_site(SiteId(9)); // no registry instance created for it
        let moves = plan_rebalance(&ring, &grown, &registries);
        if !moves.is_empty() {
            assert_eq!(
                apply_rebalance(&moves, &registries),
                Err(MetaError::Unavailable)
            );
        }
    }
}
