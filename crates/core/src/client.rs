//! The strategy-driven metadata client.
//!
//! A [`StrategyClient`] is the piece a workflow node embeds: it takes the
//! active strategy from the [`ArchitectureController`], turns each
//! operation into a plan, and executes the plan over a
//! [`RegistryTransport`]. It implements the paper's operation semantics:
//!
//! * **publish** — write to every synchronous target (write completion),
//!   then fire lazy propagation to the asynchronous targets;
//! * **resolve** — probe the plan's sites in order (the two-step
//!   hierarchical read of §IV-D falls out of the DR plan);
//! * **resolve with retry** — under the replicated strategy a read may
//!   legitimately miss until the sync agent propagates the entry; the
//!   caller supplies the waiting policy.

use crate::controller::ArchitectureController;
use crate::entry::{FileLocation, RegistryEntry};
use crate::metrics::OpStats;
use crate::protocol::{RegistryRequest, RegistryResponse};
use crate::transport::RegistryTransport;
use crate::MetaError;
use geometa_sim::topology::SiteId;
use std::sync::Arc;

/// Identity and tuning of one client.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Datacenter the client's node runs in.
    pub site: SiteId,
    /// Node index within the site (recorded in file locations).
    pub node: u32,
}

/// A metadata client bound to a transport and a strategy controller.
pub struct StrategyClient<T: RegistryTransport> {
    transport: Arc<T>,
    controller: Arc<ArchitectureController>,
    config: ClientConfig,
    stats: OpStats,
}

impl<T: RegistryTransport> StrategyClient<T> {
    /// Create a client for the node described by `config`.
    pub fn new(
        transport: Arc<T>,
        controller: Arc<ArchitectureController>,
        config: ClientConfig,
    ) -> StrategyClient<T> {
        StrategyClient {
            transport,
            controller,
            config,
            stats: OpStats::default(),
        }
    }

    /// The client's site.
    pub fn site(&self) -> SiteId {
        self.config.site
    }

    /// Operation statistics.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Publish a file's metadata. Returns when every synchronous target has
    /// acknowledged; asynchronous targets are updated lazily.
    pub fn publish(&self, name: &str, size: u64) -> Result<(), MetaError> {
        let entry = RegistryEntry::new(
            name,
            size,
            FileLocation {
                site: self.config.site,
                node: self.config.node,
            },
            self.transport.now_micros(),
        );
        self.publish_entry(entry)
    }

    /// Publish a pre-built entry (callers set provenance etc.).
    pub fn publish_entry(&self, entry: RegistryEntry) -> Result<(), MetaError> {
        use std::sync::atomic::Ordering;
        let strategy = self.controller.strategy();
        // One intern serves placement, every sync write and every lazy push.
        let key = entry.cache_key();
        let plan = strategy.write_plan_key(&key, self.config.site);
        for &target in &plan.sync_targets {
            let resp = self.transport.call(
                target,
                RegistryRequest::Put {
                    entry: entry.clone(),
                },
            );
            resp.into_ack()?;
            if target == self.config.site {
                self.stats.local_writes.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.remote_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        for &target in &plan.async_targets {
            self.transport.cast(
                target,
                RegistryRequest::Absorb {
                    entries: vec![entry.clone()],
                },
            );
            self.stats.async_pushes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Resolve a file's metadata, probing per the active strategy's plan.
    pub fn resolve(&self, name: &str) -> Result<RegistryEntry, MetaError> {
        use std::sync::atomic::Ordering;
        let strategy = self.controller.strategy();
        // One intern serves placement and every probe (no per-probe String).
        let key = geometa_cache::Key::new(name);
        let plan = strategy.read_plan_key(&key, self.config.site);
        let mut last_err = MetaError::NotFound;
        for (i, &target) in plan.probes.iter().enumerate() {
            match self
                .transport
                .call(target, RegistryRequest::Get { key: key.clone() })
            {
                RegistryResponse::Found { entry } => {
                    if i == 0 && target == self.config.site {
                        self.stats.local_read_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.stats.remote_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(entry);
                }
                RegistryResponse::Error {
                    error: MetaError::NotFound,
                } => {
                    last_err = MetaError::NotFound;
                    continue;
                }
                RegistryResponse::Error { error } => return Err(error),
                other => return Err(MetaError::Codec(format!("unexpected response {other:?}"))),
            }
        }
        self.stats.read_misses.fetch_add(1, Ordering::Relaxed);
        Err(last_err)
    }

    /// Resolve with retries, waiting via `wait(attempt)` between tries.
    ///
    /// Under eventual consistency a read can race propagation; the paper's
    /// replicated strategy relies on the sync agent, so readers of
    /// not-yet-synced entries must retry. `wait` receives the attempt index
    /// (0-based) and blocks appropriately for the embedding (sleep in live
    /// mode; virtual-time delay in the DES, which instead re-issues the op).
    pub fn resolve_with_retry(
        &self,
        name: &str,
        max_attempts: usize,
        mut wait: impl FnMut(usize),
    ) -> Result<RegistryEntry, MetaError> {
        use std::sync::atomic::Ordering;
        let mut attempt = 0;
        loop {
            match self.resolve(name) {
                Ok(e) => return Ok(e),
                Err(MetaError::NotFound) if attempt + 1 < max_attempts => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    wait(attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Remove a file's metadata from every site the write plan touches.
    pub fn unpublish(&self, name: &str) -> Result<(), MetaError> {
        let strategy = self.controller.strategy();
        let key = geometa_cache::Key::new(name);
        let plan = strategy.write_plan_key(&key, self.config.site);
        for target in plan.all_targets() {
            match self
                .transport
                .call(target, RegistryRequest::Remove { key: key.clone() })
            {
                RegistryResponse::Ack => {}
                RegistryResponse::Error {
                    error: MetaError::NotFound,
                } => {}
                RegistryResponse::Error { error } => return Err(error),
                other => return Err(MetaError::Codec(format!("unexpected response {other:?}"))),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use crate::transport::InProcessTransport;

    fn setup(kind: StrategyKind) -> (Arc<InProcessTransport>, Arc<ArchitectureController>) {
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let transport = Arc::new(InProcessTransport::new(&sites, 8));
        let controller = Arc::new(ArchitectureController::with_kind(kind, sites));
        (transport, controller)
    }

    fn client(
        t: &Arc<InProcessTransport>,
        c: &Arc<ArchitectureController>,
        site: u16,
    ) -> StrategyClient<InProcessTransport> {
        StrategyClient::new(
            Arc::clone(t),
            Arc::clone(c),
            ClientConfig {
                site: SiteId(site),
                node: 0,
            },
        )
    }

    #[test]
    fn centralized_publish_resolve_across_sites() {
        let (t, c) = setup(StrategyKind::Centralized);
        let writer = client(&t, &c, 2);
        let reader = client(&t, &c, 3);
        writer.publish("f", 100).unwrap();
        let e = reader.resolve("f").unwrap();
        assert_eq!(e.name, "f");
        assert!(e.available_at(SiteId(2)));
        // Everything lives at site 0 (the home).
        assert_eq!(t.registry(SiteId(0)).unwrap().len(), 1);
        assert_eq!(t.registry(SiteId(2)).unwrap().len(), 0);
    }

    #[test]
    fn dht_nonreplicated_partitions_entries() {
        let (t, c) = setup(StrategyKind::DhtNonReplicated);
        let w = client(&t, &c, 0);
        for i in 0..100 {
            w.publish(&format!("f{i}"), 1).unwrap();
        }
        let total: usize = (0..4).map(|s| t.registry(SiteId(s)).unwrap().len()).sum();
        assert_eq!(total, 100, "each entry lives at exactly one site");
        // No site holds everything.
        for s in 0..4 {
            assert!(t.registry(SiteId(s)).unwrap().len() < 100);
        }
        let r = client(&t, &c, 3);
        for i in 0..100 {
            assert!(r.resolve(&format!("f{i}")).is_ok());
        }
    }

    #[test]
    fn dht_local_replica_keeps_local_copy() {
        let (t, c) = setup(StrategyKind::DhtLocalReplica);
        let w = client(&t, &c, 1);
        for i in 0..100 {
            w.publish(&format!("g{i}"), 1).unwrap();
        }
        // Local site has every entry (its replica); owners have theirs.
        assert_eq!(t.registry(SiteId(1)).unwrap().len(), 100);
        // A same-site reader resolves all of them locally.
        let r = client(&t, &c, 1);
        for i in 0..100 {
            r.resolve(&format!("g{i}")).unwrap();
        }
        let snap = r.stats().snapshot();
        assert_eq!(snap.local_read_hits, 100);
        assert_eq!(snap.remote_reads, 0);
    }

    #[test]
    fn dht_local_replica_remote_reader_follows_hash() {
        let (t, c) = setup(StrategyKind::DhtLocalReplica);
        let w = client(&t, &c, 1);
        w.publish("lonely", 1).unwrap();
        // A reader in another site must still find it via the hash owner
        // (unless the owner IS the reader's site — then it's local).
        let r = client(&t, &c, 2);
        let e = r.resolve("lonely").unwrap();
        assert!(e.available_at(SiteId(1)));
    }

    #[test]
    fn replicated_reads_are_local_and_miss_before_sync() {
        let (t, c) = setup(StrategyKind::Replicated);
        let w = client(&t, &c, 0);
        w.publish("f", 1).unwrap();
        // Before any sync cycle, a remote reader misses (eventual
        // consistency window).
        let r = client(&t, &c, 3);
        assert_eq!(r.resolve("f"), Err(MetaError::NotFound));
        // Simulate the sync agent pushing the delta.
        let delta = t.registry(SiteId(0)).unwrap().delta_since(0);
        t.registry(SiteId(3)).unwrap().absorb_batch(&delta).unwrap();
        assert!(r.resolve("f").is_ok());
    }

    #[test]
    fn resolve_with_retry_waits_until_visible() {
        let (t, c) = setup(StrategyKind::Replicated);
        let w = client(&t, &c, 0);
        w.publish("slow", 1).unwrap();
        let r = client(&t, &c, 2);
        let mut waits = 0;
        let res = r.resolve_with_retry("slow", 5, |_attempt| {
            waits += 1;
            if waits == 2 {
                // Propagation arrives during the second wait.
                let delta = t.registry(SiteId(0)).unwrap().delta_since(0);
                t.registry(SiteId(2)).unwrap().absorb_batch(&delta).unwrap();
            }
        });
        assert!(res.is_ok());
        assert_eq!(waits, 2);
        assert_eq!(r.stats().snapshot().retries, 2);
    }

    #[test]
    fn resolve_with_retry_gives_up() {
        let (t, c) = setup(StrategyKind::Replicated);
        let r = client(&t, &c, 2);
        let res = r.resolve_with_retry("ghost", 3, |_| {});
        assert_eq!(res, Err(MetaError::NotFound));
        assert_eq!(r.stats().snapshot().retries, 2);
    }

    #[test]
    fn unpublish_removes_everywhere_the_plan_wrote() {
        let (t, c) = setup(StrategyKind::DhtLocalReplica);
        let w = client(&t, &c, 1);
        w.publish("doomed", 1).unwrap();
        w.unpublish("doomed").unwrap();
        for s in 0..4 {
            assert_eq!(
                t.registry(SiteId(s)).unwrap().len(),
                0,
                "site {s} still has it"
            );
        }
    }

    #[test]
    fn stats_distinguish_local_and_remote_writes() {
        let (t, c) = setup(StrategyKind::Centralized);
        let local = client(&t, &c, 0); // same site as the home registry
        let remote = client(&t, &c, 2);
        local.publish("a", 1).unwrap();
        remote.publish("b", 1).unwrap();
        assert_eq!(local.stats().snapshot().local_writes, 1);
        assert_eq!(remote.stats().snapshot().remote_writes, 1);
    }

    #[test]
    fn strategy_switch_mid_stream_changes_routing() {
        let (t, c) = setup(StrategyKind::Centralized);
        let w = client(&t, &c, 2);
        w.publish("before", 1).unwrap();
        assert_eq!(t.registry(SiteId(0)).unwrap().len(), 1);
        c.switch_kind(StrategyKind::DhtLocalReplica, (0..4).map(SiteId).collect());
        w.publish("after", 1).unwrap();
        // "after" committed at the writer's local site.
        assert!(t.registry(SiteId(2)).unwrap().get("after").is_ok());
    }
}
