//! The strategy-driven metadata client.
//!
//! A [`StrategyClient`] is the piece a workflow node embeds: it takes the
//! active strategy from the [`ArchitectureController`], turns each
//! operation into a plan, and executes the plan over a
//! [`RegistryTransport`]. It implements the paper's operation semantics:
//!
//! * **publish** — write to every synchronous target (write completion),
//!   then fire lazy propagation to the asynchronous targets;
//! * **resolve** — probe the plan's sites in order (the two-step
//!   hierarchical read of §IV-D falls out of the DR plan);
//! * **resolve with retry** — under the replicated strategy a read may
//!   legitimately miss until the sync agent propagates the entry; the
//!   caller supplies the waiting policy.

use crate::controller::ArchitectureController;
use crate::entry::{FileLocation, RegistryEntry};
use crate::metrics::OpStats;
use crate::protocol::{RegistryRequest, RegistryResponse};
use crate::transport::RegistryTransport;
use crate::MetaError;
use geometa_sim::topology::SiteId;
use std::sync::Arc;

/// Identity and tuning of one client.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Datacenter the client's node runs in.
    pub site: SiteId,
    /// Node index within the site (recorded in file locations).
    pub node: u32,
}

/// A metadata client bound to a transport and a strategy controller.
pub struct StrategyClient<T: RegistryTransport> {
    transport: Arc<T>,
    controller: Arc<ArchitectureController>,
    config: ClientConfig,
    stats: OpStats,
}

impl<T: RegistryTransport> StrategyClient<T> {
    /// Create a client for the node described by `config`.
    pub fn new(
        transport: Arc<T>,
        controller: Arc<ArchitectureController>,
        config: ClientConfig,
    ) -> StrategyClient<T> {
        StrategyClient {
            transport,
            controller,
            config,
            stats: OpStats::default(),
        }
    }

    /// The client's site.
    pub fn site(&self) -> SiteId {
        self.config.site
    }

    /// Operation statistics.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Run `op`, refreshing the membership plan and retrying when the
    /// cluster rejects it with [`MetaError::WrongEpoch`]. The refresh
    /// asks the transport for the current `(epoch, members)` and rebuilds
    /// the active strategy over them; transports without membership
    /// epochs (in-process, channels) can't refresh, so the error
    /// propagates. Bounded: a cluster reconfiguring faster than the
    /// client can chase eventually surfaces the rejection.
    fn with_epoch_refresh<R>(
        &self,
        mut op: impl FnMut(&Self) -> Result<R, MetaError>,
    ) -> Result<R, MetaError> {
        use std::sync::atomic::Ordering;
        const EPOCH_CHASES: usize = 3;
        let mut chased = 0;
        loop {
            match op(self) {
                Err(e @ MetaError::WrongEpoch { .. }) if chased < EPOCH_CHASES => {
                    let Some((_, members)) = self.transport.refresh_membership() else {
                        return Err(e);
                    };
                    self.controller.switch_kind(self.controller.kind(), members);
                    self.stats.epoch_refreshes.fetch_add(1, Ordering::Relaxed);
                    chased += 1;
                }
                other => return other,
            }
        }
    }

    /// Publish a file's metadata. Returns when every synchronous target has
    /// acknowledged; asynchronous targets are updated lazily.
    pub fn publish(&self, name: &str, size: u64) -> Result<(), MetaError> {
        let entry = RegistryEntry::new(
            name,
            size,
            FileLocation {
                site: self.config.site,
                node: self.config.node,
            },
            self.transport.now_micros(),
        );
        self.publish_entry(entry)
    }

    /// Publish a pre-built entry (callers set provenance etc.).
    pub fn publish_entry(&self, entry: RegistryEntry) -> Result<(), MetaError> {
        self.with_epoch_refresh(|c| c.publish_entry_once(entry.clone()))
    }

    fn publish_entry_once(&self, entry: RegistryEntry) -> Result<(), MetaError> {
        use std::sync::atomic::Ordering;
        let strategy = self.controller.strategy();
        // One intern serves placement, every sync write and every lazy push.
        let key = entry.cache_key();
        let plan = strategy.write_plan_key(&key, self.config.site);
        for &target in &plan.sync_targets {
            let resp = self.transport.call(
                target,
                RegistryRequest::Put {
                    entry: entry.clone(),
                },
            );
            resp.into_ack()?;
            if target == self.config.site {
                self.stats.local_writes.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.remote_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        for &target in &plan.async_targets {
            self.transport.cast(
                target,
                RegistryRequest::Absorb {
                    entries: vec![entry.clone()],
                },
            );
            self.stats.async_pushes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Resolve a file's metadata, probing per the active strategy's plan.
    ///
    /// An `Unavailable` probe (site down, circuit breaker open) fails
    /// over to the plan's next probe instead of aborting the read — under
    /// the replicating strategies another site can still answer. Only
    /// when every probe misses or fails does the read error.
    pub fn resolve(&self, name: &str) -> Result<RegistryEntry, MetaError> {
        self.with_epoch_refresh(|c| c.resolve_once(name))
    }

    fn resolve_once(&self, name: &str) -> Result<RegistryEntry, MetaError> {
        use std::sync::atomic::Ordering;
        let strategy = self.controller.strategy();
        // One intern serves placement and every probe (no per-probe String).
        let key = geometa_cache::Key::new(name);
        let plan = strategy.read_plan_key(&key, self.config.site);
        let mut last_err = MetaError::NotFound;
        for (i, &target) in plan.probes.iter().enumerate() {
            match self
                .transport
                .call(target, RegistryRequest::Get { key: key.clone() })
            {
                RegistryResponse::Found { entry } => {
                    if i == 0 && target == self.config.site {
                        self.stats.local_read_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.stats.remote_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(entry);
                }
                RegistryResponse::Error {
                    error: MetaError::NotFound,
                } => {
                    // A NotFound never downgrades an earlier Unavailable:
                    // with a probe down, "missing" can't be trusted.
                    if last_err != MetaError::Unavailable {
                        last_err = MetaError::NotFound;
                    }
                    continue;
                }
                RegistryResponse::Error {
                    error: MetaError::Unavailable,
                } => {
                    // Failover: a later probe may hold a replica.
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    last_err = MetaError::Unavailable;
                    continue;
                }
                RegistryResponse::Error { error } => return Err(error),
                other => return Err(MetaError::Codec(format!("unexpected response {other:?}"))),
            }
        }
        if last_err == MetaError::NotFound {
            self.stats.read_misses.fetch_add(1, Ordering::Relaxed);
        }
        Err(last_err)
    }

    /// Resolve with retries, waiting via `wait(attempt)` between tries.
    ///
    /// Under eventual consistency a read can race propagation; the paper's
    /// replicated strategy relies on the sync agent, so readers of
    /// not-yet-synced entries must retry. `wait` receives the attempt index
    /// (0-based) and blocks appropriately for the embedding (sleep in live
    /// mode; virtual-time delay in the DES, which instead re-issues the op).
    pub fn resolve_with_retry(
        &self,
        name: &str,
        max_attempts: usize,
        mut wait: impl FnMut(usize),
    ) -> Result<RegistryEntry, MetaError> {
        use std::sync::atomic::Ordering;
        let mut attempt = 0;
        loop {
            match self.resolve(name) {
                Ok(e) => return Ok(e),
                Err(MetaError::NotFound) if attempt + 1 < max_attempts => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    wait(attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Remove a file's metadata from every site the write plan touches.
    pub fn unpublish(&self, name: &str) -> Result<(), MetaError> {
        self.with_epoch_refresh(|c| c.unpublish_once(name))
    }

    fn unpublish_once(&self, name: &str) -> Result<(), MetaError> {
        let strategy = self.controller.strategy();
        let key = geometa_cache::Key::new(name);
        let plan = strategy.write_plan_key(&key, self.config.site);
        for target in plan.all_targets() {
            match self
                .transport
                .call(target, RegistryRequest::Remove { key: key.clone() })
            {
                RegistryResponse::Ack => {}
                RegistryResponse::Error {
                    error: MetaError::NotFound,
                } => {}
                RegistryResponse::Error { error } => return Err(error),
                other => return Err(MetaError::Codec(format!("unexpected response {other:?}"))),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;
    use crate::transport::InProcessTransport;

    fn setup(kind: StrategyKind) -> (Arc<InProcessTransport>, Arc<ArchitectureController>) {
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let transport = Arc::new(InProcessTransport::new(&sites, 8));
        let controller = Arc::new(ArchitectureController::with_kind(kind, sites));
        (transport, controller)
    }

    fn client(
        t: &Arc<InProcessTransport>,
        c: &Arc<ArchitectureController>,
        site: u16,
    ) -> StrategyClient<InProcessTransport> {
        StrategyClient::new(
            Arc::clone(t),
            Arc::clone(c),
            ClientConfig {
                site: SiteId(site),
                node: 0,
            },
        )
    }

    #[test]
    fn centralized_publish_resolve_across_sites() {
        let (t, c) = setup(StrategyKind::Centralized);
        let writer = client(&t, &c, 2);
        let reader = client(&t, &c, 3);
        writer.publish("f", 100).unwrap();
        let e = reader.resolve("f").unwrap();
        assert_eq!(e.name, "f");
        assert!(e.available_at(SiteId(2)));
        // Everything lives at site 0 (the home).
        assert_eq!(t.registry(SiteId(0)).unwrap().len(), 1);
        assert_eq!(t.registry(SiteId(2)).unwrap().len(), 0);
    }

    #[test]
    fn dht_nonreplicated_partitions_entries() {
        let (t, c) = setup(StrategyKind::DhtNonReplicated);
        let w = client(&t, &c, 0);
        for i in 0..100 {
            w.publish(&format!("f{i}"), 1).unwrap();
        }
        let total: usize = (0..4).map(|s| t.registry(SiteId(s)).unwrap().len()).sum();
        assert_eq!(total, 100, "each entry lives at exactly one site");
        // No site holds everything.
        for s in 0..4 {
            assert!(t.registry(SiteId(s)).unwrap().len() < 100);
        }
        let r = client(&t, &c, 3);
        for i in 0..100 {
            assert!(r.resolve(&format!("f{i}")).is_ok());
        }
    }

    #[test]
    fn dht_local_replica_keeps_local_copy() {
        let (t, c) = setup(StrategyKind::DhtLocalReplica);
        let w = client(&t, &c, 1);
        for i in 0..100 {
            w.publish(&format!("g{i}"), 1).unwrap();
        }
        // Local site has every entry (its replica); owners have theirs.
        assert_eq!(t.registry(SiteId(1)).unwrap().len(), 100);
        // A same-site reader resolves all of them locally.
        let r = client(&t, &c, 1);
        for i in 0..100 {
            r.resolve(&format!("g{i}")).unwrap();
        }
        let snap = r.stats().snapshot();
        assert_eq!(snap.local_read_hits, 100);
        assert_eq!(snap.remote_reads, 0);
    }

    #[test]
    fn dht_local_replica_remote_reader_follows_hash() {
        let (t, c) = setup(StrategyKind::DhtLocalReplica);
        let w = client(&t, &c, 1);
        w.publish("lonely", 1).unwrap();
        // A reader in another site must still find it via the hash owner
        // (unless the owner IS the reader's site — then it's local).
        let r = client(&t, &c, 2);
        let e = r.resolve("lonely").unwrap();
        assert!(e.available_at(SiteId(1)));
    }

    #[test]
    fn replicated_reads_are_local_and_miss_before_sync() {
        let (t, c) = setup(StrategyKind::Replicated);
        let w = client(&t, &c, 0);
        w.publish("f", 1).unwrap();
        // Before any sync cycle, a remote reader misses (eventual
        // consistency window).
        let r = client(&t, &c, 3);
        assert_eq!(r.resolve("f"), Err(MetaError::NotFound));
        // Simulate the sync agent pushing the delta.
        let delta = t.registry(SiteId(0)).unwrap().delta_since(0);
        t.registry(SiteId(3)).unwrap().absorb_batch(&delta).unwrap();
        assert!(r.resolve("f").is_ok());
    }

    #[test]
    fn resolve_with_retry_waits_until_visible() {
        let (t, c) = setup(StrategyKind::Replicated);
        let w = client(&t, &c, 0);
        w.publish("slow", 1).unwrap();
        let r = client(&t, &c, 2);
        let mut waits = 0;
        let res = r.resolve_with_retry("slow", 5, |_attempt| {
            waits += 1;
            if waits == 2 {
                // Propagation arrives during the second wait.
                let delta = t.registry(SiteId(0)).unwrap().delta_since(0);
                t.registry(SiteId(2)).unwrap().absorb_batch(&delta).unwrap();
            }
        });
        assert!(res.is_ok());
        assert_eq!(waits, 2);
        assert_eq!(r.stats().snapshot().retries, 2);
    }

    #[test]
    fn resolve_with_retry_gives_up() {
        let (t, c) = setup(StrategyKind::Replicated);
        let r = client(&t, &c, 2);
        let res = r.resolve_with_retry("ghost", 3, |_| {});
        assert_eq!(res, Err(MetaError::NotFound));
        assert_eq!(r.stats().snapshot().retries, 2);
    }

    #[test]
    fn unpublish_removes_everywhere_the_plan_wrote() {
        let (t, c) = setup(StrategyKind::DhtLocalReplica);
        let w = client(&t, &c, 1);
        w.publish("doomed", 1).unwrap();
        w.unpublish("doomed").unwrap();
        for s in 0..4 {
            assert_eq!(
                t.registry(SiteId(s)).unwrap().len(),
                0,
                "site {s} still has it"
            );
        }
    }

    #[test]
    fn stats_distinguish_local_and_remote_writes() {
        let (t, c) = setup(StrategyKind::Centralized);
        let local = client(&t, &c, 0); // same site as the home registry
        let remote = client(&t, &c, 2);
        local.publish("a", 1).unwrap();
        remote.publish("b", 1).unwrap();
        assert_eq!(local.stats().snapshot().local_writes, 1);
        assert_eq!(remote.stats().snapshot().remote_writes, 1);
    }

    #[test]
    fn resolve_fails_over_past_an_unavailable_probe() {
        use crate::controller::RING_VNODES;
        use crate::hash::{ConsistentRing, SitePlacer};

        /// Wraps the in-process transport; one site answers `Unavailable`.
        struct FlakySite {
            inner: Arc<InProcessTransport>,
            down: SiteId,
        }
        impl RegistryTransport for FlakySite {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                if target == self.down {
                    return RegistryResponse::Error {
                        error: MetaError::Unavailable,
                    };
                }
                self.inner.call(target, req)
            }
            fn cast(&self, target: SiteId, req: RegistryRequest) {
                self.inner.cast(target, req)
            }
            fn now_micros(&self) -> u64 {
                self.inner.now_micros()
            }
            fn sites(&self) -> Vec<SiteId> {
                self.inner.sites()
            }
        }

        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let inner = Arc::new(InProcessTransport::new(&sites, 8));
        let controller = Arc::new(ArchitectureController::with_kind(
            StrategyKind::DhtLocalReplica,
            sites.clone(),
        ));
        // A name whose hash owner is NOT the reader's site, so the DR
        // read plan is [local, owner] with distinct sites.
        let ring = ConsistentRing::new(sites, RING_VNODES);
        let reader_site = SiteId(2);
        let name = (0..)
            .map(|i| format!("fo{i}"))
            .find(|n| ring.owner(n) != reader_site)
            .unwrap();
        let writer = StrategyClient::new(
            Arc::clone(&inner),
            Arc::clone(&controller),
            ClientConfig {
                site: ring.owner(&name),
                node: 0,
            },
        );
        writer.publish(&name, 1).unwrap();
        // The reader's local probe is down; the read must fail over to
        // the owner probe instead of erroring out.
        let reader = StrategyClient::new(
            Arc::new(FlakySite {
                inner,
                down: reader_site,
            }),
            controller,
            ClientConfig {
                site: reader_site,
                node: 0,
            },
        );
        let e = reader.resolve(&name).unwrap();
        assert_eq!(&*e.name, name.as_str());
        assert_eq!(reader.stats().snapshot().failovers, 1);
        // A name that exists nowhere now reports Unavailable (a down
        // probe means "not found" can't be trusted), not NotFound.
        assert_eq!(reader.resolve("ghost"), Err(MetaError::Unavailable));
    }

    #[test]
    fn wrong_epoch_refreshes_the_plan_and_retries() {
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Rejects everything with `WrongEpoch` until the client asks for
        /// the current membership, then serves normally.
        struct EpochGate {
            inner: Arc<InProcessTransport>,
            refreshed: AtomicBool,
        }
        impl RegistryTransport for EpochGate {
            fn call(&self, target: SiteId, req: RegistryRequest) -> RegistryResponse {
                if !self.refreshed.load(Ordering::Acquire) {
                    return RegistryResponse::Error {
                        error: MetaError::WrongEpoch { epoch: 1 },
                    };
                }
                self.inner.call(target, req)
            }
            fn cast(&self, target: SiteId, req: RegistryRequest) {
                self.inner.cast(target, req)
            }
            fn now_micros(&self) -> u64 {
                self.inner.now_micros()
            }
            fn sites(&self) -> Vec<SiteId> {
                self.inner.sites()
            }
            fn refresh_membership(&self) -> Option<(u64, Vec<SiteId>)> {
                self.refreshed.store(true, Ordering::Release);
                Some((1, (0..3).map(SiteId).collect()))
            }
        }

        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let inner = Arc::new(InProcessTransport::new(&sites, 8));
        let controller = Arc::new(ArchitectureController::with_kind(
            StrategyKind::DhtNonReplicated,
            sites,
        ));
        let client = StrategyClient::new(
            Arc::new(EpochGate {
                inner,
                refreshed: AtomicBool::new(false),
            }),
            Arc::clone(&controller),
            ClientConfig {
                site: SiteId(0),
                node: 0,
            },
        );
        client.publish("fresh", 1).unwrap();
        assert_eq!(client.stats().snapshot().epoch_refreshes, 1);
        // The refresh rebuilt the strategy over the server's member list.
        assert_eq!(controller.history().len(), 2);
        assert_eq!(
            controller.strategy().kind(),
            StrategyKind::DhtNonReplicated,
            "refresh keeps the strategy kind"
        );
    }

    #[test]
    fn wrong_epoch_without_refresh_support_propagates() {
        struct AlwaysStale;
        impl RegistryTransport for AlwaysStale {
            fn call(&self, _target: SiteId, _req: RegistryRequest) -> RegistryResponse {
                RegistryResponse::Error {
                    error: MetaError::WrongEpoch { epoch: 7 },
                }
            }
            fn cast(&self, _target: SiteId, _req: RegistryRequest) {}
            fn now_micros(&self) -> u64 {
                0
            }
            fn sites(&self) -> Vec<SiteId> {
                vec![SiteId(0)]
            }
        }
        let controller = Arc::new(ArchitectureController::with_kind(
            StrategyKind::Centralized,
            vec![SiteId(0)],
        ));
        let client = StrategyClient::new(
            Arc::new(AlwaysStale),
            controller,
            ClientConfig {
                site: SiteId(0),
                node: 0,
            },
        );
        assert_eq!(
            client.publish("f", 1),
            Err(MetaError::WrongEpoch { epoch: 7 })
        );
    }

    #[test]
    fn strategy_switch_mid_stream_changes_routing() {
        let (t, c) = setup(StrategyKind::Centralized);
        let w = client(&t, &c, 2);
        w.publish("before", 1).unwrap();
        assert_eq!(t.registry(SiteId(0)).unwrap().len(), 1);
        c.switch_kind(StrategyKind::DhtLocalReplica, (0..4).map(SiteId).collect());
        w.publish("after", 1).unwrap();
        // "after" committed at the writer's local site.
        assert!(t.registry(SiteId(2)).unwrap().get("after").is_ok());
    }
}
