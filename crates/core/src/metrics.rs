//! Client-side operation statistics.
//!
//! Tracks where metadata operations were resolved — locally or remotely —
//! which is the quantity the paper's analysis revolves around (local ops
//! are ~50x cheaper than geo-distant ones).

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters for one client (or one aggregated view).
#[derive(Debug, Default)]
pub struct OpStats {
    /// Reads satisfied by the first (local) probe.
    pub local_read_hits: AtomicU64,
    /// Reads that needed a remote probe.
    pub remote_reads: AtomicU64,
    /// Reads that found the entry nowhere.
    pub read_misses: AtomicU64,
    /// Writes whose synchronous target was the local site.
    pub local_writes: AtomicU64,
    /// Writes whose synchronous target was remote.
    pub remote_writes: AtomicU64,
    /// Fire-and-forget propagation messages issued.
    pub async_pushes: AtomicU64,
    /// Read retries performed (replicated strategy waiting for sync).
    pub retries: AtomicU64,
    /// Read probes that failed over past an unavailable site.
    pub failovers: AtomicU64,
    /// Operations retried after refreshing a stale membership plan.
    pub epoch_refreshes: AtomicU64,
}

/// Plain-data snapshot of [`OpStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStatsSnapshot {
    /// Reads satisfied by the first (local) probe.
    pub local_read_hits: u64,
    /// Reads that needed a remote probe.
    pub remote_reads: u64,
    /// Reads that found the entry nowhere.
    pub read_misses: u64,
    /// Writes whose synchronous target was the local site.
    pub local_writes: u64,
    /// Writes whose synchronous target was remote.
    pub remote_writes: u64,
    /// Fire-and-forget propagation messages issued.
    pub async_pushes: u64,
    /// Read retries performed.
    pub retries: u64,
    /// Read probes that failed over past an unavailable site.
    pub failovers: u64,
    /// Operations retried after refreshing a stale membership plan.
    pub epoch_refreshes: u64,
}

impl OpStats {
    /// Take a snapshot.
    pub fn snapshot(&self) -> OpStatsSnapshot {
        OpStatsSnapshot {
            local_read_hits: self.local_read_hits.load(Ordering::Relaxed),
            remote_reads: self.remote_reads.load(Ordering::Relaxed),
            read_misses: self.read_misses.load(Ordering::Relaxed),
            local_writes: self.local_writes.load(Ordering::Relaxed),
            remote_writes: self.remote_writes.load(Ordering::Relaxed),
            async_pushes: self.async_pushes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            epoch_refreshes: self.epoch_refreshes.load(Ordering::Relaxed),
        }
    }
}

impl OpStatsSnapshot {
    /// All completed reads.
    pub fn reads(&self) -> u64 {
        self.local_read_hits + self.remote_reads + self.read_misses
    }

    /// All writes.
    pub fn writes(&self) -> u64 {
        self.local_writes + self.remote_writes
    }

    /// Fraction of successful reads resolved locally.
    pub fn local_read_ratio(&self) -> f64 {
        let ok = self.local_read_hits + self.remote_reads;
        if ok == 0 {
            0.0
        } else {
            self.local_read_hits as f64 / ok as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = OpStats::default();
        s.local_read_hits.fetch_add(3, Ordering::Relaxed);
        s.remote_reads.fetch_add(1, Ordering::Relaxed);
        s.local_writes.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.reads(), 4);
        assert_eq!(snap.writes(), 2);
        assert!((snap.local_read_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(OpStatsSnapshot::default().local_read_ratio(), 0.0);
    }
}
