//! Property-based tests for the core middleware: codec totality, CRDT-style
//! merge laws, hashing invariants, and strategy plan invariants.

use geometa_core::consistency::merge_entries;
use geometa_core::controller::build_strategy;
use geometa_core::entry::{FileLocation, RegistryEntry};
use geometa_core::hash::{migration_fraction, ConsistentRing, Rendezvous, SitePlacer, UniformHash};
use geometa_core::strategy::StrategyKind;
use geometa_sim::topology::SiteId;
use proptest::prelude::*;

fn arb_location() -> impl Strategy<Value = FileLocation> {
    (0..8u16, any::<u32>()).prop_map(|(s, n)| FileLocation {
        site: SiteId(s),
        node: n,
    })
}

fn arb_entry() -> impl Strategy<Value = RegistryEntry> {
    (
        "[a-z0-9/_.]{1,40}",
        any::<u64>(),
        prop::collection::vec(arb_location(), 0..6),
        prop::option::of("[a-zA-Z0-9-]{1,20}"),
        any::<u64>(),
    )
        .prop_map(
            |(name, size, locations, producer, created_at)| RegistryEntry {
                name: name.into(),
                size,
                locations: locations.into_iter().collect(),
                producer: producer.map(Into::into),
                created_at,
            },
        )
}

/// Same-name variants of an entry (for merge laws).
fn arb_entry_family() -> impl Strategy<Value = (RegistryEntry, RegistryEntry, RegistryEntry)> {
    (
        "[a-z]{1,10}",
        any::<[u64; 3]>(),
        prop::collection::vec(arb_location(), 3..9),
    )
        .prop_map(|(name, ts, locs)| {
            let mk = |i: usize| RegistryEntry {
                name: name.as_str().into(),
                size: ts[i] % 1000,
                locations: locs[i * (locs.len() / 3)..(i + 1) * (locs.len() / 3)]
                    .iter()
                    .copied()
                    .collect(),
                producer: Some(format!("t{i}").into()),
                created_at: ts[i],
            };
            (mk(0), mk(1), mk(2))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every entry round-trips through the binary codec.
    #[test]
    fn codec_roundtrip(entry in arb_entry()) {
        let bytes = entry.to_bytes();
        prop_assert_eq!(bytes.len(), entry.encoded_len());
        let back = RegistryEntry::from_bytes(bytes).unwrap();
        prop_assert_eq!(back, entry);
    }

    /// The decoder never panics on arbitrary garbage — it errors.
    #[test]
    fn codec_rejects_garbage(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = RegistryEntry::from_bytes(bytes::Bytes::from(raw));
        // Reaching here without a panic is the property.
    }

    /// Truncating a valid encoding anywhere yields an error, not a panic.
    #[test]
    fn codec_rejects_truncation(entry in arb_entry(), cut_frac in 0.0f64..1.0) {
        let full = entry.to_bytes();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        if cut < full.len() {
            prop_assert!(RegistryEntry::from_bytes(full.slice(0..cut)).is_err());
        }
    }

    /// Merge is commutative, associative and idempotent (location sets can
    /// then propagate in any order and still converge).
    #[test]
    fn merge_laws((a, b, c) in arb_entry_family()) {
        let ab = merge_entries(&a, &b);
        let ba = merge_entries(&b, &a);
        prop_assert_eq!(&ab, &ba, "commutativity");
        let ab_c = merge_entries(&ab, &c);
        let a_bc = merge_entries(&a, &merge_entries(&b, &c));
        prop_assert_eq!(&ab_c, &a_bc, "associativity");
        let aa = merge_entries(&a, &a);
        prop_assert_eq!(merge_entries(&aa, &a), aa.clone(), "idempotence");
        // Merge never loses a location.
        for loc in a.locations.iter().chain(b.locations.iter()) {
            prop_assert!(ab.locations.contains(loc), "lost location {loc:?}");
        }
    }

    /// Every placer is deterministic and in-range for arbitrary keys.
    #[test]
    fn placers_deterministic_in_range(keys in prop::collection::vec("[a-z0-9]{1,24}", 1..50), n_sites in 1..8usize) {
        let sites: Vec<SiteId> = (0..n_sites as u16).map(SiteId).collect();
        let placers: Vec<Box<dyn SitePlacer>> = vec![
            Box::new(UniformHash::new(sites.clone())),
            Box::new(ConsistentRing::new(sites.clone(), 64)),
            Box::new(Rendezvous::new(sites.clone())),
        ];
        for p in &placers {
            for k in &keys {
                let o = p.owner(k);
                prop_assert!(sites.contains(&o));
                prop_assert_eq!(o, p.owner(k));
            }
        }
    }

    /// Ring membership change moves only a bounded fraction of keys, and
    /// every moved key moves to the new site.
    #[test]
    fn ring_migration_is_minimal(n_sites in 2..7usize, new_site in 100..110u16) {
        let keys: Vec<String> = (0..4000).map(|i| format!("key{i}")).collect();
        let sites: Vec<SiteId> = (0..n_sites as u16).map(SiteId).collect();
        let before = ConsistentRing::new(sites, 64);
        let mut after = before.clone();
        after.add_site(SiteId(new_site));
        let frac = migration_fraction(&before, &after, &keys);
        let ideal = 1.0 / (n_sites as f64 + 1.0);
        prop_assert!(frac < ideal * 2.0, "migration {frac} vs ideal {ideal}");
        for k in &keys {
            if before.owner(k) != after.owner(k) {
                prop_assert_eq!(after.owner(k), SiteId(new_site));
            }
        }
    }

    /// Strategy plan invariants, for every strategy, key and origin:
    /// exactly one synchronous write target; reads probe at least one site;
    /// DR probes the local site first; every plan stays within registry
    /// sites.
    #[test]
    fn strategy_plan_invariants(key in "[a-z0-9/]{1,30}", origin in 0..4u16) {
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let origin = SiteId(origin);
        for kind in StrategyKind::all() {
            let s = build_strategy(kind, sites.clone());
            let wp = s.write_plan(&key, origin);
            prop_assert_eq!(wp.sync_targets.len(), 1, "{}", kind);
            let registry_sites = s.registry_sites();
            for t in wp.all_targets() {
                prop_assert!(registry_sites.contains(&t), "{}", kind);
            }
            let rp = s.read_plan(&key, origin);
            prop_assert!(!rp.probes.is_empty(), "{}", kind);
            for t in &rp.probes {
                prop_assert!(registry_sites.contains(t), "{}", kind);
            }
            match kind {
                StrategyKind::DhtLocalReplica => {
                    prop_assert_eq!(rp.probes[0], origin, "DR reads local first");
                    prop_assert_eq!(wp.sync_targets[0], origin, "DR writes complete locally");
                }
                StrategyKind::Replicated => {
                    prop_assert_eq!(rp.probes.clone(), vec![origin]);
                    prop_assert_eq!(wp.sync_targets[0], origin);
                    prop_assert!(wp.async_targets.is_empty(), "agent propagates, not the client");
                }
                StrategyKind::Centralized => {
                    prop_assert_eq!(rp.probes[0], wp.sync_targets[0], "reads go where writes go");
                }
                StrategyKind::DhtNonReplicated => {
                    prop_assert_eq!(rp.probes.clone(), wp.sync_targets.clone(), "owner serves both");
                }
            }
        }
    }

    /// A write followed by a read through the same strategy's plans always
    /// finds the entry (read-your-writes through the plan algebra): the
    /// read probe list intersects the write targets.
    #[test]
    fn read_plans_cover_write_plans(key in "[a-z0-9]{1,20}", origin in 0..4u16, reader in 0..4u16) {
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        for kind in StrategyKind::all() {
            if kind == StrategyKind::Replicated {
                continue; // coverage comes from the sync agent, not the plan
            }
            let s = build_strategy(kind, sites.clone());
            let wp = s.write_plan(&key, SiteId(origin));
            let rp = s.read_plan(&key, SiteId(reader));
            let write_sites: Vec<SiteId> = wp.all_targets().collect();
            prop_assert!(
                rp.probes.iter().any(|p| write_sites.contains(p)),
                "{}: read probes {:?} never reach write sites {:?}",
                kind, rp.probes, write_sites
            );
        }
    }
}
