//! Property tests for the RPC wire codec, mirroring the entry-codec
//! suite: totality (garbage and truncation error, never panic),
//! round-trip identity for every `RegistryRequest`/`RegistryResponse`
//! variant, and the frame-size accounting the network layers rely on.

use geometa_core::entry::{FileLocation, RegistryEntry};
use geometa_core::protocol::{
    ReconfigureOp, RegistryRequest, RegistryResponse, SiteStatus, FRAME_OVERHEAD,
};
use geometa_core::MetaError;
use geometa_sim::topology::SiteId;
use proptest::prelude::*;

fn arb_location() -> impl Strategy<Value = FileLocation> {
    (0..8u16, any::<u32>()).prop_map(|(s, n)| FileLocation {
        site: SiteId(s),
        node: n,
    })
}

fn arb_entry() -> impl Strategy<Value = RegistryEntry> {
    (
        "[a-z0-9/_.]{1,40}",
        any::<u64>(),
        prop::collection::vec(arb_location(), 0..6),
        prop::option::of("[a-zA-Z0-9-]{1,20}"),
        any::<u64>(),
    )
        .prop_map(
            |(name, size, locations, producer, created_at)| RegistryEntry {
                name: name.into(),
                size,
                locations: locations.into_iter().collect(),
                producer: producer.map(Into::into),
                created_at,
            },
        )
}

fn arb_error() -> impl Strategy<Value = MetaError> {
    prop_oneof![
        Just(MetaError::NotFound),
        Just(MetaError::Unavailable),
        Just(MetaError::Contention),
        any::<u64>().prop_map(|epoch| MetaError::WrongEpoch { epoch }),
        "[ -~]{0,60}".prop_map(MetaError::Codec),
    ]
}

fn arb_op() -> impl Strategy<Value = ReconfigureOp> {
    prop_oneof![
        Just(ReconfigureOp::Join),
        Just(ReconfigureOp::Leave),
        Just(ReconfigureOp::Drain),
    ]
}

fn arb_status() -> impl Strategy<Value = SiteStatus> {
    (
        (0..8u16, any::<u64>(), prop::collection::vec(0..64u16, 0..8)),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<bool>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |((site, epoch, members), (wal_seq, entries, conns, rebalancing, last_moved))| {
                SiteStatus {
                    site: SiteId(site),
                    epoch,
                    members: members.into_iter().map(SiteId).collect(),
                    wal_seq,
                    entries,
                    conns,
                    rebalancing,
                    last_moved,
                }
            },
        )
}

fn arb_request() -> impl Strategy<Value = RegistryRequest> {
    prop_oneof![
        "[a-z0-9/_.]{1,40}".prop_map(|k| RegistryRequest::Get { key: k.into() }),
        arb_entry().prop_map(|entry| RegistryRequest::Put { entry }),
        prop::collection::vec(arb_entry(), 0..5)
            .prop_map(|entries| RegistryRequest::Absorb { entries }),
        "[a-z0-9/_.]{1,40}".prop_map(|k| RegistryRequest::Remove { key: k.into() }),
        any::<u64>().prop_map(|since| RegistryRequest::DeltaPull { since }),
        Just(RegistryRequest::Status),
        (arb_op(), 0..64u16).prop_map(|(op, s)| RegistryRequest::Reconfigure {
            op,
            site: SiteId(s),
        }),
    ]
}

fn arb_response() -> impl Strategy<Value = RegistryResponse> {
    prop_oneof![
        arb_entry().prop_map(|entry| RegistryResponse::Found { entry }),
        Just(RegistryResponse::Ack),
        prop::collection::vec(arb_entry(), 0..5)
            .prop_map(|entries| RegistryResponse::Delta { entries }),
        arb_status().prop_map(|status| RegistryResponse::Status { status }),
        arb_error().prop_map(|error| RegistryResponse::Error { error }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request round-trips, and `encoded_len` is exact.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let wire = req.encode();
        prop_assert_eq!(wire.len(), req.encoded_len());
        prop_assert_eq!(RegistryRequest::decode(wire).unwrap(), req);
    }

    /// Every response round-trips, and `encoded_len` is exact.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        let wire = resp.encode();
        prop_assert_eq!(wire.len(), resp.encoded_len());
        prop_assert_eq!(RegistryResponse::decode(wire).unwrap(), resp);
    }

    /// The in-place encoder is byte-identical to the allocating one, and
    /// strictly appends — bytes already in the buffer are untouched. The
    /// server reactor relies on this to encode responses directly behind
    /// the frame header it has already written.
    #[test]
    fn request_encode_into_matches_encode(
        req in arb_request(),
        prefix in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let wire = req.encode();
        let mut buf = prefix.clone();
        req.encode_into(&mut buf);
        prop_assert_eq!(&buf[..prefix.len()], &prefix[..]);
        prop_assert_eq!(&buf[prefix.len()..], &wire[..]);
    }

    /// Same for responses.
    #[test]
    fn response_encode_into_matches_encode(
        resp in arb_response(),
        prefix in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let wire = resp.encode();
        let mut buf = prefix.clone();
        resp.encode_into(&mut buf);
        prop_assert_eq!(&buf[..prefix.len()], &prefix[..]);
        prop_assert_eq!(&buf[prefix.len()..], &wire[..]);
    }

    /// The borrowed fast-path decoders agree with the full decoder:
    /// `decode_get_key` answers `Some` exactly for Get requests (with the
    /// right key), and whenever `decode_fixed_response` answers it equals
    /// the full decode. Fixed-shape responses must actually take the fast
    /// path — that is what keeps the echo call allocation-free.
    #[test]
    fn fast_path_decoders_agree(req in arb_request(), resp in arb_response()) {
        use geometa_core::protocol::{decode_fixed_response, decode_get_key};

        let wire = req.encode();
        match &req {
            RegistryRequest::Get { key } => {
                prop_assert_eq!(decode_get_key(&wire), Some(key.as_str()));
            }
            _ => prop_assert_eq!(decode_get_key(&wire), None),
        }

        let wire = resp.encode();
        if let Some(fast) = decode_fixed_response(&wire) {
            prop_assert_eq!(fast, resp.clone());
        }
        let fixed_shape = matches!(
            &resp,
            RegistryResponse::Ack
                | RegistryResponse::Error {
                    error: MetaError::NotFound
                        | MetaError::Unavailable
                        | MetaError::Contention
                        | MetaError::WrongEpoch { .. },
                }
        );
        if fixed_shape {
            prop_assert!(decode_fixed_response(&wire).is_some());
        }
    }

    /// The decoders never panic on arbitrary garbage — they error.
    #[test]
    fn decoders_total_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = RegistryRequest::decode(bytes::Bytes::from(raw.clone()));
        let _ = RegistryResponse::decode(bytes::Bytes::from(raw));
        // Reaching here without a panic is the property.
    }

    /// Truncating a valid encoding anywhere errors, never panics.
    #[test]
    fn request_truncation_errors(req in arb_request(), cut_frac in 0.0f64..1.0) {
        let full = req.encode();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        if cut < full.len() {
            prop_assert!(RegistryRequest::decode(full.slice(0..cut)).is_err());
        }
    }

    /// Same for responses.
    #[test]
    fn response_truncation_errors(resp in arb_response(), cut_frac in 0.0f64..1.0) {
        let full = resp.encode();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        if cut < full.len() {
            prop_assert!(RegistryResponse::decode(full.slice(0..cut)).is_err());
        }
    }

    /// Appending trailing bytes to a valid encoding errors (one frame =
    /// exactly one message).
    #[test]
    fn trailing_bytes_error(req in arb_request(), extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut wire = req.encode().to_vec();
        wire.extend_from_slice(&extra);
        prop_assert!(RegistryRequest::decode(bytes::Bytes::from(wire)).is_err());
    }

    /// Frame-size accounting: the DES network model charges
    /// `wire_size() = FRAME_OVERHEAD + payload`, where the payload term
    /// counts exactly the entry/key bytes. The real codec adds only tags
    /// and length prefixes on top of that payload, and those always fit
    /// inside the FRAME_OVERHEAD budget for batches the protocol actually
    /// ships (≤ ~9 entries amortize 4+4·n ≤ 48); singleton messages are
    /// always under budget. So the simulated byte count is a faithful
    /// stand-in for the framed TCP bytes.
    #[test]
    fn wire_size_accounts_for_the_real_frame(req in arb_request(), resp in arb_response()) {
        // Payload exactness: encoded_len minus codec framing equals the
        // wire_size payload term.
        let req_framing = match &req {
            RegistryRequest::Get { .. } | RegistryRequest::Remove { .. } => 1 + 4,
            RegistryRequest::Put { .. } => 1 + 4,
            RegistryRequest::Absorb { entries } => 1 + 4 + 4 * entries.len(),
            RegistryRequest::DeltaPull { .. } => 1,
            // Ops messages charge their whole (tiny, fixed) encoding as
            // the wire payload, so codec framing nets to ≤1 byte.
            RegistryRequest::Status => 0,
            RegistryRequest::Reconfigure { .. } => 1,
        };
        prop_assert_eq!(
            req.encoded_len() - req_framing,
            (req.wire_size() as usize) - FRAME_OVERHEAD
        );
        prop_assert!(req_framing <= FRAME_OVERHEAD);
        prop_assert!(req.encoded_len() as u64 <= req.wire_size());

        match &resp {
            RegistryResponse::Found { entry } => {
                prop_assert_eq!(resp.encoded_len(), 5 + entry.encoded_len());
                prop_assert_eq!(resp.wire_size() as usize, FRAME_OVERHEAD + entry.encoded_len());
            }
            RegistryResponse::Ack => {
                prop_assert_eq!(resp.encoded_len(), 1);
                prop_assert_eq!(resp.wire_size() as usize, FRAME_OVERHEAD + 1);
            }
            RegistryResponse::Delta { entries } => {
                let framing = 5 + 4 * entries.len();
                let payload: usize = entries.iter().map(|e| e.encoded_len()).sum();
                prop_assert_eq!(resp.encoded_len(), framing + payload);
                prop_assert_eq!(resp.wire_size() as usize, FRAME_OVERHEAD + payload);
            }
            RegistryResponse::Status { status } => {
                let n = status.members.len();
                prop_assert_eq!(resp.encoded_len(), 42 + 2 * n);
                prop_assert_eq!(resp.wire_size() as usize, FRAME_OVERHEAD + 40 + 2 * n);
            }
            RegistryResponse::Error { error } => {
                // The network model charges a flat 16-byte error payload;
                // the real encoding is 2 bytes plus the codec text. Both
                // stay within one frame-overhead budget of each other for
                // the short diagnostics the registry emits.
                prop_assert_eq!(resp.wire_size() as usize, FRAME_OVERHEAD + 16);
                let text = match error {
                    MetaError::Codec(m) => 4 + m.len(),
                    MetaError::WrongEpoch { .. } => 8,
                    _ => 0,
                };
                prop_assert_eq!(resp.encoded_len(), 2 + text);
            }
        }
        prop_assert!(resp.encoded_len() <= resp.wire_size() as usize + FRAME_OVERHEAD);
    }
}
