//! Property-based tests for the write-ahead log's torn-write handling.
//!
//! The crash-consistency contract under test: for *any* mutilation of the
//! on-disk image — truncation at every byte offset, a flipped byte at
//! every position — recovery yields a clean prefix of what was appended
//! (or a typed error, for the all-or-nothing snapshot). It never panics,
//! and it never resurrects a record that was not appended.

use geometa_core::entry::{FileLocation, RegistryEntry};
use geometa_core::protocol::RegistryRequest;
use geometa_core::wal::{
    decode_log, decode_snapshot, encode_record, encode_snapshot, read_log_file, FileWal,
    FsyncPolicy, WalError, WalSink, LOG_FILE,
};
use geometa_sim::topology::SiteId;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_entry() -> impl Strategy<Value = RegistryEntry> {
    (
        "[a-z0-9/_.]{1,32}",
        any::<u64>(),
        0..8u16,
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(name, size, site, node, created_at)| {
            RegistryEntry::new(
                &name,
                size,
                FileLocation {
                    site: SiteId(site),
                    node,
                },
                created_at,
            )
        })
}

/// A log image built from appended writes, with per-record boundaries.
fn arb_log() -> impl Strategy<Value = (Vec<RegistryRequest>, Vec<u8>, Vec<usize>)> {
    prop::collection::vec(arb_entry(), 1..8).prop_map(|entries| {
        let reqs: Vec<RegistryRequest> = entries
            .into_iter()
            .map(|entry| RegistryRequest::Put { entry })
            .collect();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for (i, req) in reqs.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, 10 * i as u64, req));
            boundaries.push(bytes.len());
        }
        (reqs, bytes, boundaries)
    })
}

/// The decoded records must be exactly the first `n` appended ones.
fn assert_prefix(decoded: &[geometa_core::wal::WalRecord], appended: &[RegistryRequest], n: usize) {
    assert_eq!(decoded.len(), n);
    for (i, rec) in decoded.iter().enumerate() {
        assert_eq!(rec.seq, i as u64 + 1);
        assert_eq!(rec.now_micros, 10 * i as u64);
        assert_eq!(rec.req.encode(), appended[i].encode());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncation at every byte offset: the clean prefix survives, the
    /// torn tail is reported at the exact boundary, nothing else appears.
    #[test]
    fn truncation_recovers_a_clean_prefix(
        (reqs, bytes, boundaries) in arb_log(),
        cut_raw in any::<u64>(),
    ) {
        let cut = (cut_raw % (bytes.len() as u64 + 1)) as usize;
        let (decoded, torn) = decode_log(&bytes[..cut]);
        // Complete records strictly inside the cut.
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_prefix(&decoded, &reqs, complete);
        if boundaries.contains(&cut) {
            // Truncation on a record boundary is indistinguishable from a
            // shorter-but-clean log.
            prop_assert!(torn.is_none(), "boundary cut {cut} reported torn {torn:?}");
        } else {
            let torn = torn.expect("mid-record cut must report a torn tail");
            prop_assert_eq!(torn.offset as usize, boundaries[complete]);
        }
    }

    /// A flipped byte at every position: records before the damaged one
    /// survive untouched; the damaged one and everything after it are
    /// dropped — never decoded into something that was not appended.
    /// (A CRC32 collision could in principle let damage pass; at one
    /// byte flip per case this is a 2^-32 deterministic non-event, and
    /// a seed that hit one would fail reproducibly.)
    #[test]
    fn single_byte_corruption_truncates_at_the_damaged_record(
        (reqs, bytes, boundaries) in arb_log(),
        pos_raw in any::<u64>(),
        flip in 1..=255u8,
    ) {
        let pos = (pos_raw % bytes.len() as u64) as usize;
        let mut dirty = bytes.clone();
        dirty[pos] ^= flip;
        let (decoded, torn) = decode_log(&dirty);
        let damaged = boundaries.iter().filter(|&&b| b <= pos).count() - 1;
        assert_prefix(&decoded, &reqs, damaged);
        let torn = torn.expect("corruption must be detected");
        prop_assert_eq!(torn.offset as usize, boundaries[damaged]);
    }

    /// The snapshot is all-or-nothing: any single flipped byte turns the
    /// whole image into a typed `CorruptSnapshot` error — no partial
    /// entry list, no panic.
    #[test]
    fn snapshot_corruption_is_a_typed_error(
        entries in prop::collection::vec(arb_entry(), 0..6),
        seq in any::<u64>(),
        pos_raw in any::<u64>(),
        flip in 1..=255u8,
    ) {
        let clean = encode_snapshot(seq, &entries);
        let (got_seq, got) = decode_snapshot(Path::new("clean"), &clean).expect("clean decodes");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got.len(), entries.len());
        let mut dirty = clean.clone();
        let pos = (pos_raw % dirty.len() as u64) as usize;
        dirty[pos] ^= flip;
        match decode_snapshot(Path::new("dirty"), &dirty) {
            Err(WalError::CorruptSnapshot { .. }) => {}
            other => prop_assert!(false, "flip at {pos} yielded {other:?}"),
        }
    }
}

/// A unique scratch dir per proptest case (cases run in one process).
fn scratch_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "geometa-wal-props-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The file-backed sink under the same contract, end to end: append,
    /// close, truncate `wal.log` at an arbitrary offset, reopen. The
    /// recovery is the clean prefix; the cut tail is reported, not
    /// replayed; nothing unappended is resurrected.
    #[test]
    fn file_wal_survives_truncation_on_reopen(
        entries in prop::collection::vec(arb_entry(), 1..6),
        cut_raw in any::<u64>(),
    ) {
        let dir = scratch_dir();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let appended: Vec<RegistryRequest> = entries
            .into_iter()
            .map(|entry| RegistryRequest::Put { entry })
            .collect();
        {
            let (wal, recovery) = FileWal::open(&dir, FsyncPolicy::Always).expect("cold open");
            prop_assert!(recovery.is_empty());
            for (i, req) in appended.iter().enumerate() {
                wal.append(req, i as u64).expect("append");
            }
            wal.close();
        }
        let log = dir.join(LOG_FILE);
        let full = std::fs::read(&log).expect("read log");
        let (all, torn) = decode_log(&full);
        prop_assert!(torn.is_none(), "freshly closed log must be clean");
        prop_assert_eq!(all.len(), appended.len());

        let cut = (cut_raw % (full.len() as u64 + 1)) as usize;
        std::fs::write(&log, &full[..cut]).expect("truncate log");
        let (tail, reopen_torn) = read_log_file(&log).expect("reopen never errors on torn");
        for (i, rec) in tail.iter().enumerate() {
            prop_assert_eq!(rec.req.encode(), appended[i].encode());
        }
        prop_assert!(tail.len() <= appended.len());
        if cut < full.len() {
            prop_assert!(
                tail.len() < appended.len() || reopen_torn.is_some() || cut == full.len(),
                "a shortened log cannot still claim every record"
            );
        }
        // And the sink itself reopens on the mutilated image without
        // panicking, seeing exactly the same clean prefix.
        let (wal, recovery) = FileWal::open(&dir, FsyncPolicy::Always).expect("torn reopen");
        prop_assert_eq!(recovery.tail.len(), tail.len());
        wal.close();
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
