//! Quickstart: run a live multi-site metadata cluster and use it.
//!
//! Starts the four-datacenter deployment (one registry service thread per
//! site, WAN latencies injected, compressed 1000x so the demo is instant),
//! publishes file metadata from one site and resolves it from the others.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geometa::core::live::{LiveCluster, LiveConfig};
use geometa::core::strategy::StrategyKind;
use geometa::sim::topology::{SiteId, Topology};
use std::time::Duration;

fn main() {
    let topology = Topology::azure_4dc();
    println!(
        "Starting a live cluster over {} datacenters:",
        topology.num_sites()
    );
    for site in topology.site_ids() {
        println!(
            "  {site} = {:<17} (centrality {:.1} ms)",
            topology.site(site).name,
            topology.centrality(site).as_secs_f64() * 1_000.0
        );
    }

    let cluster = LiveCluster::start(LiveConfig {
        topology,
        kind: StrategyKind::DhtLocalReplica,
        latency_scale: 0.001, // 1000x compressed WAN latencies
        ..LiveConfig::default()
    });

    // A workflow node in West Europe publishes its outputs.
    let writer = cluster.client(SiteId(0), 0);
    for i in 0..10 {
        writer
            .publish(&format!("results/part_{i}.dat"), 190 * 1024)
            .unwrap();
    }
    println!("\npublished 10 files from West Europe");

    // A co-located node resolves them instantly (local replica).
    let local_reader = cluster.client(SiteId(0), 1);
    let entry = local_reader.resolve("results/part_3.dat").unwrap();
    println!(
        "local resolve:  results/part_3.dat -> {} bytes at {:?}",
        entry.size, entry.locations
    );
    let stats = local_reader.stats().snapshot();
    println!(
        "local reader stats: {} local hit(s), {} remote read(s)",
        stats.local_read_hits, stats.remote_reads
    );

    // A node in South Central US resolves through the DHT owner (lazy
    // propagation may still be in flight, so retry briefly).
    let remote_reader = cluster.client(SiteId(3), 0);
    let entry = remote_reader
        .resolve_with_retry("results/part_7.dat", 100, |_| {
            std::thread::sleep(Duration::from_millis(1))
        })
        .unwrap();
    println!(
        "remote resolve: results/part_7.dat -> {} bytes, available at {} location(s)",
        entry.size,
        entry.locations.len()
    );

    // Strategies are hot-swappable through the architecture controller.
    cluster.controller().switch_kind(
        StrategyKind::Centralized,
        cluster.topology().site_ids().collect(),
    );
    writer
        .publish("results/final.dat", 8 * 1024 * 1024)
        .unwrap();
    let entry = remote_reader.resolve("results/final.dat").unwrap();
    println!(
        "\nswitched to {:?}; resolved results/final.dat ({} bytes) through the central registry",
        cluster.controller().kind(),
        entry.size
    );
    println!("strategy history: {:?}", cluster.controller().history());

    cluster.shutdown();
    println!("\ncluster shut down cleanly");
}
