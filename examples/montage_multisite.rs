//! Run a Montage-shaped astronomy workflow on the live multi-site cluster
//! under two metadata strategies and compare makespans.
//!
//! Montage is the paper's "parallel, geo-distributed application": a split,
//! a wide band of parallel re-projection jobs, and a merge. Tasks discover
//! their inputs *through the metadata registry* and publish their outputs
//! back to it — the registry is the only coordination medium, exactly as in
//! file-based workflow engines.
//!
//! ```text
//! cargo run --release --example montage_multisite
//! ```

use geometa::core::live::{LiveCluster, LiveConfig};
use geometa::core::strategy::StrategyKind;
use geometa::sim::time::SimDuration;
use geometa::sim::topology::{SiteId, Topology};
use geometa::workflow::apps::montage::{montage, MontageConfig};
use geometa::workflow::engine::{EngineConfig, MetadataOps, WorkflowEngine};
use geometa::workflow::provenance::{provisioning_plan, ProvenanceIndex};
use geometa::workflow::scheduler::{node_grid, schedule, NodeId, SchedulerPolicy};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn run_once(kind: StrategyKind) -> Duration {
    let cluster = LiveCluster::start(LiveConfig {
        topology: Topology::azure_4dc(),
        kind,
        latency_scale: 0.0005, // 2000x compression
        ..LiveConfig::default()
    });

    let workflow = montage(MontageConfig {
        tiles: 16,
        files_per_task: 4,
        compute: SimDuration::from_millis(50),
        ..MontageConfig::default()
    });
    let sites: Vec<SiteId> = cluster.topology().site_ids().collect();
    let nodes = node_grid(&sites, 4); // 16 nodes over 4 sites
    let placement = schedule(&workflow, &nodes, SchedulerPolicy::LocalityAware);

    // One metadata client per execution node.
    let clients: HashMap<NodeId, Arc<dyn MetadataOps>> = nodes
        .iter()
        .map(|&n| {
            let c: Arc<dyn MetadataOps> = Arc::new(cluster.client(n.site, n.index));
            (n, c)
        })
        .collect();

    let report = WorkflowEngine::new(EngineConfig {
        compute_scale: 0.001, // compress task compute like the latencies
        max_resolve_attempts: 100_000,
        resolve_backoff: Duration::from_micros(300),
    })
    .run(&workflow, &placement, &clients)
    .expect("workflow completes");

    println!(
        "  {:<22} makespan {:>8.1?}   {} resolves  {} publishes  stall {:?}",
        kind.label(),
        report.makespan,
        report.resolve_calls,
        report.publish_calls,
        report.stall_time
    );
    cluster.shutdown();
    report.makespan
}

fn main() {
    let workflow = montage(MontageConfig {
        tiles: 16,
        files_per_task: 4,
        compute: SimDuration::from_millis(50),
        ..MontageConfig::default()
    });
    println!(
        "Montage workflow: {} tasks, {} files, {} metadata ops, width {}, critical path {}",
        workflow.len(),
        workflow.total_files(),
        workflow.total_metadata_ops(),
        workflow.max_width(),
        workflow.critical_path()
    );

    // Provenance: which transfers would a prefetcher schedule?
    let sites: Vec<SiteId> = Topology::azure_4dc().site_ids().collect();
    let nodes = node_grid(&sites, 4);
    let placement = schedule(&workflow, &nodes, SchedulerPolicy::LocalityAware);
    let plan = provisioning_plan(&workflow, &placement);
    let idx = ProvenanceIndex::build(&workflow);
    println!(
        "locality-aware placement co-locates {:.0}% of dependency edges; {} cross-site transfers ({} KiB) remain",
        placement.colocated_edge_fraction(&workflow) * 100.0,
        plan.len(),
        geometa::workflow::provenance::plan_bytes(&plan) / 1024
    );
    if let Some((hot, readers)) = idx.shared_files().first() {
        println!("hottest shared file: {hot} ({readers} readers)\n");
    }

    println!("Executing on the live cluster (latencies compressed 2000x):");
    let centralized = run_once(StrategyKind::Centralized);
    let dht = run_once(StrategyKind::DhtLocalReplica);
    let gain = 1.0 - dht.as_secs_f64() / centralized.as_secs_f64();
    println!(
        "\ndecentralized (local-replica) vs centralized: {:+.0}% makespan",
        -gain * 100.0
    );
}
