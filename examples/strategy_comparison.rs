//! Compare all four metadata-management strategies on the paper's §VI-B
//! synthetic benchmark, in the deterministic simulator.
//!
//! Half the nodes write consecutive entries, half read random ones; nodes
//! are spread over the four Azure datacenters. The run reports the figures
//! the paper's evaluation revolves around: average node completion time,
//! aggregate throughput, local-read fraction and WAN traffic.
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use geometa::core::strategy::StrategyKind;
use geometa::experiments::simbind::{run_synthetic, SimConfig};
use geometa::experiments::table::Table;
use geometa::workflow::apps::synthetic::SyntheticSpec;

fn main() {
    let spec = SyntheticSpec::scaling(32, 1_000);
    println!(
        "synthetic benchmark: {} nodes ({} writers / {} readers), {} ops/node, {} total ops\n",
        spec.nodes,
        spec.writers(),
        spec.nodes - spec.writers(),
        spec.ops_per_node,
        spec.total_ops()
    );

    let mut table = Table::new(
        "strategy comparison — 32 nodes, 1000 ops/node",
        &[
            "strategy",
            "avg node time (s)",
            "throughput (ops/s)",
            "local reads",
            "read retries",
            "WAN msgs",
        ],
    );
    let mut best: Option<(StrategyKind, f64)> = None;
    for kind in StrategyKind::all() {
        let out = run_synthetic(&spec, &SimConfig::new(kind, 42));
        table.row(vec![
            kind.label().to_string(),
            format!("{:.1}", out.avg_node_completion.as_secs_f64()),
            format!("{:.0}", out.throughput),
            format!("{:.0}%", out.local_read_fraction * 100.0),
            out.read_retries.to_string(),
            out.wan_messages.to_string(),
        ]);
        let t = out.avg_node_completion.as_secs_f64();
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((kind, t));
        }
    }
    println!("{}", table.render());
    let (winner, _) = best.expect("ran at least one strategy");
    println!("fastest strategy for this workload: {}", winner.label());
    println!(
        "\n(the paper's §VII guidance: centralized for small runs, replicated for\n\
         few/large files, decentralized non-replicated for scatter/gather\n\
         parallelism, decentralized locally-replicated for pipelines — try\n\
         changing the spec above and watch the winner move.)"
    );
}
