//! The paper's §VII "which strategy fits what workload" discussion as a
//! runnable decision aid — then verified empirically in the simulator.
//!
//! For each of four archetypal workloads the advisor recommends a
//! strategy; the example then *measures* all four strategies on a matching
//! synthetic/simulated workload and reports whether the recommendation
//! held up.
//!
//! ```text
//! cargo run --release --example strategy_advisor
//! ```

use geometa::core::advisor::{explain, recommend, DominantPattern, WorkloadProfile};
use geometa::core::strategy::StrategyKind;
use geometa::experiments::calibration::Calibration;
use geometa::experiments::simbind::{run_synthetic, SimConfig};
use geometa::sim::time::SimDuration;
use geometa::workflow::apps::synthetic::SyntheticSpec;

fn measure(kind: StrategyKind, nodes: usize, ops: usize) -> f64 {
    let spec = SyntheticSpec {
        nodes,
        ops_per_node: ops,
        compute_per_op: SimDuration::ZERO,
        seed: 99,
    };
    let cfg = SimConfig {
        cal: Calibration::default(),
        ..SimConfig::new(kind, 99)
    };
    run_synthetic(&spec, &cfg).avg_node_completion.as_secs_f64()
}

fn main() {
    let workloads = [
        (
            "genome pipeline, 4 sites, millions of small files",
            WorkloadProfile {
                nodes: 64,
                sites: 4,
                files_per_node: 5_000,
                avg_file_size: 190 * 1024,
                pattern: DominantPattern::Pipeline,
            },
        ),
        (
            "sky-survey mosaics, wide scatter/gather across sites",
            WorkloadProfile {
                nodes: 128,
                sites: 4,
                files_per_node: 2_000,
                avg_file_size: 1024 * 1024,
                pattern: DominantPattern::ScatterGather,
            },
        ),
        (
            "climate model outputs: few 100 MB files per node",
            WorkloadProfile {
                nodes: 64,
                sites: 4,
                files_per_node: 40,
                avg_file_size: 100 * 1024 * 1024,
                pattern: DominantPattern::Mixed,
            },
        ),
        (
            "small single-site test campaign",
            WorkloadProfile {
                nodes: 8,
                sites: 1,
                files_per_node: 200,
                avg_file_size: 64 * 1024,
                pattern: DominantPattern::Mixed,
            },
        ),
    ];

    println!("=== advisor recommendations (paper §VII) ===\n");
    for (desc, p) in &workloads {
        println!("  {desc}\n    -> {}\n", explain(p));
    }

    // Empirical check on the metadata-intensive multi-site case.
    println!("=== measuring the first workload (32 nodes x 1000 ops) ===\n");
    let profile = &workloads[0].1;
    let recommended = recommend(profile);
    let mut results: Vec<(StrategyKind, f64)> = StrategyKind::all()
        .into_iter()
        .map(|k| (k, measure(k, 32, 1_000)))
        .collect();
    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (kind, secs) in &results {
        let marks = match (kind == &recommended, kind == &results[0].0) {
            (true, true) => "  <- recommended AND fastest",
            (true, false) => "  <- recommended",
            (false, true) => "  <- fastest",
            _ => "",
        };
        println!("  {:<22} {:>8.1} s{marks}", kind.label(), secs);
    }
    println!(
        "\nthe decentralized strategies dominate the metadata-intensive case,\n\
         matching the paper's conclusion; switch live via\n\
         cluster.controller().switch_kind(recommendation, sites)."
    );
}
