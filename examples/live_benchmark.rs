//! Run the paper's synthetic benchmark on the REAL threaded deployment —
//! not the simulator — and check that the strategy ordering carries over.
//!
//! 16 nodes (8 writers / 8 readers) over 4 datacenters, WAN latencies
//! injected at 1/2000 scale. Writers post consecutive entries; readers
//! fetch random ones with retry (eventual consistency). This is the same
//! §VI-B workload the simulator reproduces at full scale; here it runs on
//! real threads, channels and locks.
//!
//! ```text
//! cargo run --release --example live_benchmark
//! ```

use geometa::core::live::{LiveCluster, LiveConfig};
use geometa::core::strategy::StrategyKind;
use geometa::sim::topology::Topology;
use geometa::workflow::apps::synthetic::{Role, SyntheticSpec};
use std::time::{Duration, Instant};

fn run_strategy(kind: StrategyKind, spec: &SyntheticSpec) -> Duration {
    let cluster = LiveCluster::start(LiveConfig {
        topology: Topology::azure_4dc(),
        kind,
        latency_scale: 0.0005,
        shards: 16,
        sync_interval: Duration::from_millis(1),
    });
    let n_sites = cluster.topology().num_sites();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for node in 0..spec.nodes {
            let cluster = &cluster;
            scope.spawn(move || {
                let site = geometa::experiments::simbind::site_of_node(node, n_sites);
                let client = cluster.client(site, node as u32);
                let mut rng = spec.node_rng(node);
                for i in 0..spec.ops_per_node {
                    match spec.role(node) {
                        Role::Writer => {
                            client.publish(&spec.writer_key(node, i), 0).unwrap();
                        }
                        Role::Reader => {
                            let key = spec.reader_key(node, i, &mut rng);
                            // Retry while propagation catches up.
                            let _ = client.resolve_with_retry(&key, 500, |_| {
                                std::thread::sleep(Duration::from_micros(300))
                            });
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    cluster.shutdown();
    elapsed
}

fn main() {
    let spec = SyntheticSpec::scaling(16, 150);
    println!(
        "live synthetic benchmark: {} nodes x {} ops, 4 DCs, latencies compressed 2000x\n",
        spec.nodes, spec.ops_per_node
    );
    let mut results: Vec<(StrategyKind, Duration)> = StrategyKind::all()
        .into_iter()
        .map(|kind| {
            let t = run_strategy(kind, &spec);
            println!("  {:<22} {:>9.1?}", kind.label(), t);
            (kind, t)
        })
        .collect();
    results.sort_by_key(|(_, t)| *t);
    println!(
        "\nfastest on real threads: {}  (the simulator's full-scale ordering: \
         decentralized > replicated > centralized; see EXPERIMENTS.md)",
        results[0].0.label()
    );
}
