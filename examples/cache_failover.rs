//! Failure injection: kill a registry's primary cache mid-traffic and watch
//! the replica take over without losing acknowledged writes.
//!
//! The cache tier mirrors the paper's §III-B design: "If a failure occurs
//! with the primary cache, the replica cache is automatically promoted to
//! primary and a new replica is created and populated."
//!
//! ```text
//! cargo run --release --example cache_failover
//! ```

use geometa::cache::HaCache;
use geometa::core::entry::{FileLocation, RegistryEntry};
use geometa::core::registry::RegistryInstance;
use geometa::sim::topology::SiteId;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    // --- Raw cache pair -------------------------------------------------
    let ha = HaCache::new(16);
    let stop = AtomicBool::new(false);

    let per_thread: Vec<u64> = std::thread::scope(|s| {
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let (ha, stop) = (&ha, &stop);
                s.spawn(move || {
                    let mut written = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        ha.put(
                            &format!("t{t}-k{written}"),
                            bytes::Bytes::from_static(b"payload"),
                            written,
                        )
                        .unwrap();
                        written += 1;
                    }
                    written
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(20));
        println!("killing the primary cache mid-traffic...");
        ha.fail_primary();
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);

        writers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let total: u64 = per_thread.iter().sum();
    println!("writers acknowledged {total} writes across the failure (per thread: {per_thread:?})");
    println!("promotions performed: {}", ha.promotions());

    // Every acknowledged write must be readable after promotion.
    let mut verified = 0u64;
    for (t, &n) in per_thread.iter().enumerate() {
        for k in 0..n {
            ha.get(&format!("t{t}-k{k}"))
                .unwrap_or_else(|e| panic!("acknowledged write t{t}-k{k} lost in failover: {e}"));
            verified += 1;
        }
    }
    println!("verified {verified}/{total} acknowledged writes survived  ✔\n");

    // --- Same story one level up: a registry instance --------------------
    let registry = RegistryInstance::new(SiteId(0), 16);
    for i in 0..1_000 {
        registry
            .put(
                &RegistryEntry::new(
                    format!("wf/file{i}"),
                    190 * 1024,
                    FileLocation {
                        site: SiteId(0),
                        node: i % 8,
                    },
                    i as u64,
                ),
                i as u64,
            )
            .unwrap();
    }
    registry.fail_primary();
    let survivors = (0..1_000)
        .filter(|i| registry.get(&format!("wf/file{i}")).is_ok())
        .count();
    println!("registry instance: {survivors}/1000 entries survived primary failure  ✔");
}
